#include "io/csv.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace cosmicdance::io {
namespace {

// Incremental CSV record parser; returns true when a record is complete and
// false when it ended mid-quote (caller should append the next line).
bool parse_into(const std::string& line, CsvRow& row, std::string& field,
                bool& in_quotes) {
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else {
      if (c == '"') {
        if (!field.empty()) {
          throw ParseError("quote inside unquoted CSV field: '" + line + "'");
        }
        in_quotes = true;
      } else if (c == ',') {
        row.push_back(field);
        field.clear();
      } else {
        field.push_back(c);
      }
    }
    ++i;
  }
  if (in_quotes) {
    field.push_back('\n');
    return false;
  }
  row.push_back(field);
  field.clear();
  return true;
}

}  // namespace

CsvRow parse_csv_line(const std::string& line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  if (!parse_into(line, row, field, in_quotes)) {
    throw ParseError("unterminated quote in CSV line: '" + line + "'");
  }
  return row;
}

std::vector<CsvRow> read_csv(std::istream& in) {
  std::vector<CsvRow> rows;
  std::string line;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!in_quotes && line.empty()) continue;
    if (parse_into(line, row, field, in_quotes)) {
      rows.push_back(std::move(row));
      row.clear();
    }
  }
  if (in_quotes) throw ParseError("CSV input ended inside a quoted field");
  return rows;
}

std::vector<CsvRow> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open CSV file: " + path);
  return read_csv(in);
}

std::string escape_csv_field(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string format_csv_row(const CsvRow& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += escape_csv_field(row[i]);
  }
  return out;
}

void write_csv(std::ostream& out, const std::vector<CsvRow>& rows) {
  for (const CsvRow& row : rows) out << format_csv_row(row) << '\n';
}

void write_csv_file(const std::string& path, const std::vector<CsvRow>& rows) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open CSV file for writing: " + path);
  write_csv(out, rows);
  if (!out) throw IoError("failed writing CSV file: " + path);
}

}  // namespace cosmicdance::io
