
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_kessler.cpp" "bench/CMakeFiles/ext_kessler.dir/ext_kessler.cpp.o" "gcc" "bench/CMakeFiles/ext_kessler.dir/ext_kessler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simulation/CMakeFiles/cd_simulation.dir/DependInfo.cmake"
  "/root/repo/build/src/atmosphere/CMakeFiles/cd_atmosphere.dir/DependInfo.cmake"
  "/root/repo/build/src/sgp4/CMakeFiles/cd_sgp4.dir/DependInfo.cmake"
  "/root/repo/build/src/tle/CMakeFiles/cd_tle.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/cd_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/spaceweather/CMakeFiles/cd_spaceweather.dir/DependInfo.cmake"
  "/root/repo/build/src/timeutil/CMakeFiles/cd_timeutil.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
