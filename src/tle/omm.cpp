#include "tle/omm.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace cosmicdance::tle {
namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string format_number(double value, int precision = 10) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

double require_number(const std::map<std::string, std::string>& kv,
                      const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end()) {
    throw ParseError("OMM missing mandatory key " + key,
                     ErrorCategory::kStructure);
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  // Accept an optional CCSDS unit suffix ("325.0254 [deg]") after the
  // number, but nothing else: "1.5x" must not silently parse as 1.5.
  const char* rest = end;
  while (*rest == ' ' || *rest == '\t') ++rest;
  if (*rest == '[') {
    while (*rest != '\0' && *rest != ']') ++rest;
    if (*rest == ']') ++rest;
    while (*rest == ' ' || *rest == '\t') ++rest;
  }
  if (end == it->second.c_str() || *rest != '\0') {
    throw ParseError("OMM key " + key + " is not numeric: '" + it->second + "'",
                     ErrorCategory::kNumeric);
  }
  return value;
}

}  // namespace

std::string to_omm_kvn(const Tle& tle, const std::string& object_name) {
  tle.validate();
  std::ostringstream out;
  out << "CCSDS_OMM_VERS = 2.0\n";
  out << "CREATOR = cosmicdance\n";
  if (!object_name.empty()) out << "OBJECT_NAME = " << object_name << "\n";
  out << "OBJECT_ID = " << tle.international_designator << "\n";
  out << "CENTER_NAME = EARTH\n";
  out << "REF_FRAME = TEME\n";
  out << "TIME_SYSTEM = UTC\n";
  out << "MEAN_ELEMENT_THEORY = SGP4\n";
  out << "EPOCH = " << tle.epoch_datetime().to_string() << "\n";
  out << "MEAN_MOTION = " << format_number(tle.mean_motion_revday, 12) << "\n";
  out << "ECCENTRICITY = " << format_number(tle.eccentricity, 9) << "\n";
  out << "INCLINATION = " << format_number(tle.inclination_deg) << "\n";
  out << "RA_OF_ASC_NODE = " << format_number(tle.raan_deg) << "\n";
  out << "ARG_OF_PERICENTER = " << format_number(tle.arg_perigee_deg) << "\n";
  out << "MEAN_ANOMALY = " << format_number(tle.mean_anomaly_deg) << "\n";
  out << "EPHEMERIS_TYPE = " << tle.ephemeris_type << "\n";
  out << "CLASSIFICATION_TYPE = " << tle.classification << "\n";
  out << "NORAD_CAT_ID = " << tle.catalog_number << "\n";
  out << "ELEMENT_SET_NO = " << tle.element_set_number << "\n";
  out << "REV_AT_EPOCH = " << tle.rev_number << "\n";
  out << "BSTAR = " << format_number(tle.bstar, 10) << "\n";
  out << "MEAN_MOTION_DOT = " << format_number(tle.mean_motion_dot, 10) << "\n";
  out << "MEAN_MOTION_DDOT = " << format_number(tle.mean_motion_ddot, 10) << "\n";
  return out.str();
}

Tle from_omm_kvn(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;  // comments / blank lines
    kv[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
  }

  Tle tle;
  tle.catalog_number = static_cast<int>(require_number(kv, "NORAD_CAT_ID"));
  const auto epoch_it = kv.find("EPOCH");
  if (epoch_it == kv.end()) {
    throw ParseError("OMM missing mandatory key EPOCH", ErrorCategory::kStructure);
  }
  tle.epoch_jd = timeutil::to_julian(timeutil::parse_datetime(epoch_it->second));
  tle.mean_motion_revday = require_number(kv, "MEAN_MOTION");
  tle.eccentricity = require_number(kv, "ECCENTRICITY");
  tle.inclination_deg = require_number(kv, "INCLINATION");
  tle.raan_deg = require_number(kv, "RA_OF_ASC_NODE");
  tle.arg_perigee_deg = require_number(kv, "ARG_OF_PERICENTER");
  tle.mean_anomaly_deg = require_number(kv, "MEAN_ANOMALY");

  if (const auto it = kv.find("OBJECT_ID"); it != kv.end()) {
    tle.international_designator = it->second;
  }
  if (const auto it = kv.find("CLASSIFICATION_TYPE");
      it != kv.end() && !it->second.empty()) {
    tle.classification = it->second[0];
  }
  if (kv.count("BSTAR") > 0) tle.bstar = require_number(kv, "BSTAR");
  if (kv.count("MEAN_MOTION_DOT") > 0) {
    tle.mean_motion_dot = require_number(kv, "MEAN_MOTION_DOT");
  }
  if (kv.count("MEAN_MOTION_DDOT") > 0) {
    tle.mean_motion_ddot = require_number(kv, "MEAN_MOTION_DDOT");
  }
  if (kv.count("EPHEMERIS_TYPE") > 0) {
    tle.ephemeris_type = static_cast<int>(require_number(kv, "EPHEMERIS_TYPE"));
  }
  if (kv.count("ELEMENT_SET_NO") > 0) {
    tle.element_set_number =
        static_cast<int>(require_number(kv, "ELEMENT_SET_NO"));
  }
  if (kv.count("REV_AT_EPOCH") > 0) {
    tle.rev_number = static_cast<int>(require_number(kv, "REV_AT_EPOCH"));
  }
  tle.validate();
  return tle;
}

std::string catalog_to_omm_kvn(const TleCatalog& catalog) {
  std::string out;
  for (const int id : catalog.satellites()) {
    for (const Tle& record : catalog.history(id)) {
      out += to_omm_kvn(record);
      out += "\n";
    }
  }
  return out;
}

std::size_t catalog_add_from_omm_kvn(TleCatalog& catalog, const std::string& text) {
  return catalog_add_from_omm_kvn(catalog, text, nullptr);
}

std::size_t catalog_add_from_omm_kvn(TleCatalog& catalog, const std::string& text,
                                     diag::ParseLog* log,
                                     const std::string& source) {
  constexpr const char* kStage = "omm";
  std::size_t added = 0;
  std::string block;
  std::size_t block_start_line = 0;
  std::size_t line_number = 0;
  std::istringstream in(text);
  std::string line;
  auto flush = [&]() {
    if (block.find("NORAD_CAT_ID") != std::string::npos) {
      try {
        if (catalog.add(from_omm_kvn(block))) ++added;
        if (log != nullptr) log->accept(kStage);
      } catch (const Error& error) {
        if (log == nullptr) throw;
        const auto* parse_error = dynamic_cast<const ParseError*>(&error);
        const ErrorCategory category = parse_error != nullptr
                                           ? parse_error->category()
                                           : ErrorCategory::kRange;
        log->reject(kStage, category, error.what(), block,
                    diag::RecordRef{source, block_start_line});
      }
    }
    block.clear();
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (trim(line).empty()) {
      flush();
    } else {
      // A new message header also terminates the previous block.
      if (line.rfind("CCSDS_OMM_VERS", 0) == 0) flush();
      if (block.empty()) block_start_line = line_number;
      block += line;
      block.push_back('\n');
    }
  }
  flush();
  return added;
}

}  // namespace cosmicdance::tle
