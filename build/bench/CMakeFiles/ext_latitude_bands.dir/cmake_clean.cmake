file(REMOVE_RECURSE
  "CMakeFiles/ext_latitude_bands.dir/ext_latitude_bands.cpp.o"
  "CMakeFiles/ext_latitude_bands.dir/ext_latitude_bands.cpp.o.d"
  "ext_latitude_bands"
  "ext_latitude_bands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_latitude_bands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
