#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/error.hpp"
#include "core/analysis.hpp"
#include "core/cleaning.hpp"
#include "core/correlator.hpp"
#include "core/pipeline.hpp"
#include "core/track.hpp"
#include "io/file.hpp"
#include "orbit/elements.hpp"
#include "spaceweather/wdc.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance::core {
namespace {

using timeutil::make_datetime;

const double kJd0 = timeutil::to_julian(make_datetime(2023, 6, 1));

TrajectorySample sample_at(double jd, double altitude, double bstar = 2e-4) {
  TrajectorySample s;
  s.epoch_jd = jd;
  s.altitude_km = altitude;
  s.bstar = bstar;
  s.inclination_deg = 53.0;
  s.mean_motion_revday = orbit::mean_motion_from_altitude_km(altitude);
  return s;
}

/// Flat track at `altitude` sampled every 12 h for `days` days.
SatelliteTrack flat_track(int catalog, double altitude, double days,
                          double start_jd = kJd0 - 60.0) {
  std::vector<TrajectorySample> samples;
  for (double t = 0.0; t < days; t += 0.5) {
    samples.push_back(sample_at(start_jd + t, altitude));
  }
  return SatelliteTrack(catalog, std::move(samples));
}

/// Track that dips after kJd0 and recovers (a storm-outage storyline).
SatelliteTrack dip_track(int catalog, double dip_km, double dip_days,
                         double recover_by_day) {
  std::vector<TrajectorySample> samples;
  for (double t = -60.0; t < 40.0; t += 0.5) {
    double altitude = 550.0;
    double bstar = 2e-4;
    if (t > 0.0 && t <= dip_days) {
      altitude = 550.0 - dip_km * (t / dip_days);
      bstar = 2e-3;  // drag spike while uncontrolled
    } else if (t > dip_days && t < recover_by_day) {
      const double frac = (t - dip_days) / (recover_by_day - dip_days);
      altitude = 550.0 - dip_km * (1.0 - frac);
      bstar = 8e-4;
    }
    samples.push_back(sample_at(kJd0 + t, altitude, bstar));
  }
  return SatelliteTrack(catalog, std::move(samples));
}

/// Track decaying linearly from kJd0 with no recovery.
SatelliteTrack decay_track(int catalog, double rate_km_per_day) {
  std::vector<TrajectorySample> samples;
  for (double t = -60.0; t < 40.0; t += 0.5) {
    const double altitude = t <= 0.0 ? 550.0 : 550.0 - rate_km_per_day * t;
    samples.push_back(sample_at(kJd0 + t, std::max(altitude, 210.0)));
  }
  return SatelliteTrack(catalog, std::move(samples));
}

TEST(TrackTest, SortsSamples) {
  std::vector<TrajectorySample> samples{sample_at(kJd0 + 2.0, 550.0),
                                        sample_at(kJd0, 550.0),
                                        sample_at(kJd0 + 1.0, 550.0)};
  const SatelliteTrack track(7, std::move(samples));
  EXPECT_EQ(track.catalog_number(), 7);
  ASSERT_EQ(track.size(), 3u);
  EXPECT_LT(track.samples()[0].epoch_jd, track.samples()[1].epoch_jd);
}

TEST(TrackTest, Lookups) {
  const SatelliteTrack track = flat_track(1, 550.0, 10.0, kJd0);
  EXPECT_EQ(track.at_or_before(kJd0 - 1.0), nullptr);
  EXPECT_NEAR(track.at_or_before(kJd0 + 1.25)->epoch_jd, kJd0 + 1.0, 1e-9);
  EXPECT_NEAR(track.at_or_after(kJd0 + 1.25)->epoch_jd, kJd0 + 1.5, 1e-9);
  EXPECT_EQ(track.at_or_after(kJd0 + 100.0), nullptr);
  EXPECT_EQ(track.between(kJd0 + 1.0, kJd0 + 3.0).size(), 4u);
  EXPECT_TRUE(track.between(kJd0 + 50.0, kJd0 + 60.0).empty());
}

TEST(TrackTest, MedianAltitude) {
  const SatelliteTrack track = flat_track(1, 547.5, 20.0);
  EXPECT_NEAR(track.median_altitude_km(), 547.5, 1e-9);
  const SatelliteTrack empty(2, {});
  EXPECT_THROW(static_cast<void>(empty.median_altitude_km()), ValidationError);
}

TEST(TrackTest, SeriesViews) {
  const SatelliteTrack track = flat_track(1, 550.0, 5.0, kJd0);
  const auto altitudes = track.altitude_series();
  const auto bstars = track.bstar_series();
  ASSERT_EQ(altitudes.size(), track.size());
  EXPECT_DOUBLE_EQ(altitudes.front().value, 550.0);
  EXPECT_DOUBLE_EQ(bstars.front().value, 2e-4);
}

TEST(TrackTest, FromTles) {
  tle::TleCatalog catalog;
  tle::Tle t;
  t.catalog_number = 45000;
  t.international_designator = "20001A";
  t.epoch_jd = kJd0;
  t.inclination_deg = 53.0;
  t.mean_motion_revday = 15.06;
  t.bstar = 3e-4;
  catalog.add(t);
  t.epoch_jd = kJd0 + 0.5;
  catalog.add(t);
  const auto tracks = tracks_from_catalog(catalog);
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].size(), 2u);
  EXPECT_NEAR(tracks[0].samples()[0].altitude_km,
              orbit::altitude_km_from_mean_motion(15.06), 1e-9);
}

TEST(CleaningTest, OutlierRemoval) {
  SatelliteTrack track(1, {sample_at(kJd0, 550.0), sample_at(kJd0 + 1, 40000.0),
                           sample_at(kJd0 + 2, 90.0), sample_at(kJd0 + 3, 651.0),
                           sample_at(kJd0 + 4, 649.0)});
  EXPECT_EQ(remove_outliers(track), 3u);
  EXPECT_EQ(track.size(), 2u);
  for (const auto& s : track.samples()) {
    EXPECT_GT(s.altitude_km, 100.0);
    EXPECT_LE(s.altitude_km, 650.0);
  }
}

TEST(CleaningTest, OrbitRaisingRemoval) {
  // 20 days staging at 350, 50 days raising, then 40 days at 550.
  std::vector<TrajectorySample> samples;
  for (double t = 0.0; t < 110.0; t += 0.5) {
    double altitude = 350.0;
    if (t >= 20.0 && t < 70.0) altitude = 350.0 + 4.0 * (t - 20.0);
    if (t >= 70.0) altitude = 550.0;
    samples.push_back(sample_at(kJd0 + t, altitude));
  }
  SatelliteTrack track(1, std::move(samples));
  const std::size_t removed = remove_orbit_raising(track);
  EXPECT_GT(removed, 100u);  // staging + raising dropped
  EXPECT_GE(track.samples().front().altitude_km, 545.0);
}

TEST(CleaningTest, FlatTrackUntouchedByRaisingFilter) {
  SatelliteTrack track = flat_track(1, 550.0, 30.0);
  EXPECT_EQ(remove_orbit_raising(track), 0u);
  EXPECT_EQ(track.size(), 60u);
}

TEST(CleaningTest, NeverRaisedTrackKeptIntact) {
  SatelliteTrack track = flat_track(1, 350.0, 30.0);
  EXPECT_EQ(remove_orbit_raising(track), 0u);
}

TEST(CleaningTest, PreDecayFilter) {
  EXPECT_FALSE(is_pre_decayed(flat_track(1, 550.0, 120.0), kJd0));
  // Decaying since 30 days before the event: pre-event altitude far from the
  // long-term median.
  std::vector<TrajectorySample> samples;
  for (double t = -90.0; t < 30.0; t += 0.5) {
    const double altitude = t < -30.0 ? 550.0 : 550.0 - (t + 30.0) * 1.0;
    samples.push_back(sample_at(kJd0 + t, altitude));
  }
  // altitude drops 1 km/day from t=-30 => at t=0 it is 30 km below median.
  SatelliteTrack decaying(2, std::move(samples));
  EXPECT_TRUE(is_pre_decayed(decaying, kJd0));
}

TEST(CleaningTest, PreDecayRequiresFreshSample) {
  // Last sample 10 days before the event: too stale to anchor the analysis.
  SatelliteTrack track = flat_track(1, 550.0, 30.0, kJd0 - 40.0);
  EXPECT_TRUE(is_pre_decayed(track, kJd0));
  // No samples before the event at all.
  SatelliteTrack later = flat_track(2, 550.0, 30.0, kJd0 + 1.0);
  EXPECT_TRUE(is_pre_decayed(later, kJd0));
}

TEST(CleaningTest, CleanTracksDropsEmpty) {
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(flat_track(1, 550.0, 10.0));
  tracks.push_back(SatelliteTrack(2, {sample_at(kJd0, 40000.0)}));  // all outliers
  const auto cleaned = clean_tracks(std::move(tracks));
  ASSERT_EQ(cleaned.size(), 1u);
  EXPECT_EQ(cleaned[0].catalog_number(), 1);
}

// ---- correlator ------------------------------------------------------------

spaceweather::DstIndex storm_series() {
  // 120 days of -10 nT with one deep storm at kJd0 (hours 60d into series).
  std::vector<double> values(static_cast<std::size_t>(24 * 120), -10.0);
  const auto start = timeutil::hour_index_from_datetime(make_datetime(2023, 4, 2));
  const auto storm_start = timeutil::hour_index_from_datetime(make_datetime(2023, 6, 1));
  for (int h = 0; h < 8; ++h) {
    values[static_cast<std::size_t>(storm_start - start + h)] =
        h < 4 ? -120.0 : -70.0;
  }
  return spaceweather::DstIndex(start, std::move(values));
}

class CorrelatorTest : public ::testing::Test {
 protected:
  CorrelatorTest() : dst_(storm_series()), correlator_(&dst_) {}
  spaceweather::DstIndex dst_;
  EventCorrelator correlator_;
};

TEST_F(CorrelatorTest, RequiresDst) {
  EXPECT_THROW(EventCorrelator(nullptr), ValidationError);
}

TEST_F(CorrelatorTest, HumpedSelectionFindsDipOnly) {
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(flat_track(1, 550.0, 120.0));
  tracks.push_back(dip_track(2, 8.0, 12.0, 25.0));
  tracks.push_back(decay_track(3, 2.0));  // permanent decay: fails hump rule

  const PostEventEnvelope envelope = correlator_.post_event_envelope(
      tracks, kJd0, 30, EnvelopeSelection::kAffectedHumped);
  ASSERT_EQ(envelope.satellites.size(), 1u);
  EXPECT_EQ(envelope.satellites[0], 2);
  // Median deviation peaks mid-window around the dip bottom.
  EXPECT_GT(envelope.median_km[12], 5.0);
  EXPECT_LT(envelope.median_km[29], 2.0);  // recovered by the end
}

TEST_F(CorrelatorTest, AllSelectionIncludesEveryCleanSatellite) {
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(flat_track(1, 550.0, 120.0));
  tracks.push_back(dip_track(2, 8.0, 12.0, 25.0));
  const PostEventEnvelope envelope = correlator_.post_event_envelope(
      tracks, kJd0, 15, EnvelopeSelection::kAll);
  EXPECT_EQ(envelope.satellites.size(), 2u);
  // Flat satellite contributes ~zero deviation to the median.
  EXPECT_LT(envelope.median_km[7], 4.0);
}

TEST_F(CorrelatorTest, PreDecayedExcluded) {
  std::vector<SatelliteTrack> tracks;
  // Started decaying 40 days before the event: excluded everywhere.
  std::vector<TrajectorySample> samples;
  for (double t = -60.0; t < 40.0; t += 0.5) {
    samples.push_back(sample_at(kJd0 + t, 550.0 - std::max(0.0, t + 40.0)));
  }
  tracks.push_back(SatelliteTrack(9, std::move(samples)));
  const auto envelope = correlator_.post_event_envelope(
      tracks, kJd0, 30, EnvelopeSelection::kAll);
  EXPECT_TRUE(envelope.satellites.empty());
  const auto changes = correlator_.altitude_change_samples(
      tracks, std::vector<double>{kJd0});
  EXPECT_TRUE(changes.empty());
}

TEST_F(CorrelatorTest, AltitudeChangeSamples) {
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(flat_track(1, 550.0, 120.0));
  tracks.push_back(dip_track(2, 8.0, 12.0, 25.0));
  const auto changes = correlator_.altitude_change_samples(
      tracks, std::vector<double>{kJd0});
  ASSERT_EQ(changes.size(), 2u);
  // Max |deviation| within 30 days: ~0 for flat, ~8 for the dip.
  const double flat_change = std::min(changes[0], changes[1]);
  const double dip_change = std::max(changes[0], changes[1]);
  EXPECT_LT(flat_change, 0.5);
  EXPECT_NEAR(dip_change, 8.0, 0.8);
}

TEST_F(CorrelatorTest, DragChangeSamples) {
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(dip_track(2, 8.0, 12.0, 25.0));
  const auto ratios = correlator_.drag_change_samples(
      tracks, std::vector<double>{kJd0});
  ASSERT_EQ(ratios.size(), 1u);
  EXPECT_NEAR(ratios[0], 10.0, 0.5);  // 2e-3 / 2e-4
}

TEST_F(CorrelatorTest, StormEpochs) {
  const auto all = correlator_.storm_event_epochs(-50.0);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_NEAR(all[0], kJd0, 0.5);
  EXPECT_TRUE(correlator_.storm_event_epochs(-150.0).empty());
  const auto [short_events, long_events] =
      correlator_.storm_epochs_by_duration(-50.0, 9.0);
  EXPECT_EQ(short_events.size(), 1u);  // the storm lasts 8 h < 9 h
  EXPECT_TRUE(long_events.empty());
}

TEST_F(CorrelatorTest, QuietEpochsAvoidStorm) {
  const auto epochs = correlator_.quiet_epochs(-30.0, 20);
  EXPECT_GT(epochs.size(), 5u);
  for (const double jd : epochs) {
    EXPECT_GT(std::fabs(jd - kJd0), 2.0) << "quiet epoch inside the storm guard";
  }
}

// ---- analysis ---------------------------------------------------------------

TEST(AnalysisTest, AllAltitudes) {
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(flat_track(1, 550.0, 5.0));
  tracks.push_back(flat_track(2, 540.0, 5.0));
  const auto altitudes = all_altitudes(tracks);
  EXPECT_EQ(altitudes.size(), 20u);
}

TEST(AnalysisTest, SuperstormPanelRows) {
  const spaceweather::DstIndex dst = storm_series();
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(dip_track(2, 8.0, 12.0, 25.0));
  tracks.push_back(flat_track(1, 550.0, 120.0));
  const auto rows = superstorm_panel(tracks, dst, kJd0 - 3.0, kJd0 + 4.0);
  ASSERT_EQ(rows.size(), 7u);
  // Pre-storm day: quiet Dst, 2 satellites tracked.
  EXPECT_NEAR(rows[0].dst_min_nt, -10.0, 1.0);
  EXPECT_EQ(rows[0].tracked_satellites, 2);
  // Storm day: the -120 nT dip shows up and drag (B*) jumps.
  bool saw_storm_day = false;
  for (const auto& row : rows) {
    if (row.dst_min_nt < -100.0) {
      saw_storm_day = true;
      EXPECT_GT(row.bstar_p95, 1e-3);  // the dip track's 2e-3 spike
    }
  }
  EXPECT_TRUE(saw_storm_day);
}

TEST(AnalysisTest, TrackTimelines) {
  std::vector<SatelliteTrack> tracks;
  tracks.push_back(flat_track(44943, 550.0, 10.0));
  tracks.push_back(flat_track(45400, 540.0, 10.0));
  const std::vector<int> wanted{45400, 99999};
  const auto timelines = track_timelines(tracks, wanted);
  ASSERT_EQ(timelines.size(), 1u);  // unknown id skipped
  EXPECT_EQ(timelines[0].catalog_number, 45400);
  EXPECT_EQ(timelines[0].epoch_jd.size(), 20u);
  EXPECT_DOUBLE_EQ(timelines[0].altitude_km.front(), 540.0);
}

// ---- pipeline façade --------------------------------------------------------

tle::TleCatalog synthetic_catalog() {
  tle::TleCatalog catalog;
  for (int sat = 0; sat < 3; ++sat) {
    for (double t = -40.0; t < 40.0; t += 0.5) {
      tle::Tle record;
      record.catalog_number = 45000 + sat;
      record.international_designator = "20001A";
      record.epoch_jd = kJd0 + t;
      record.inclination_deg = 53.0;
      record.mean_motion_revday =
          orbit::mean_motion_from_altitude_km(550.0 - 2.0 * sat);
      record.bstar = 2e-4;
      catalog.add(record);
    }
  }
  return catalog;
}

TEST(PipelineTest, ConstructsAndExposesViews) {
  CosmicDance pipeline(storm_series(), synthetic_catalog());
  EXPECT_EQ(pipeline.tracks().size(), 3u);
  EXPECT_EQ(pipeline.raw_tracks().size(), 3u);
  EXPECT_EQ(pipeline.catalog().satellite_count(), 3u);
  const auto storms = pipeline.storms();
  ASSERT_EQ(storms.size(), 1u);
  EXPECT_EQ(storms[0].category, spaceweather::StormCategory::kModerate);
  EXPECT_LT(pipeline.dst_threshold_at_percentile(99.9), -50.0);
}

TEST(PipelineTest, AnalysesRun) {
  CosmicDance pipeline(storm_series(), synthetic_catalog());
  const auto changes = pipeline.altitude_changes_for_storms(-50.0);
  EXPECT_EQ(changes.size(), 3u);
  const auto quiet = pipeline.altitude_changes_for_quiet(-30.0, 5);
  EXPECT_GT(quiet.size(), 0u);
  const auto drags = pipeline.drag_changes_for_storms(-50.0);
  EXPECT_EQ(drags.size(), 3u);
  const auto envelope =
      pipeline.post_event_envelope(kJd0, 10, EnvelopeSelection::kAll);
  EXPECT_EQ(envelope.satellites.size(), 3u);
}

TEST(PipelineTest, FromFiles) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "cd_pipeline_test";
  fs::create_directories(dir);
  const std::string dst_path = (dir / "dst.wdc").string();
  const std::string tle_path = (dir / "catalog.tle").string();
  spaceweather::write_wdc_file(dst_path, storm_series());
  io::write_file(tle_path, synthetic_catalog().to_text());

  const CosmicDance pipeline = CosmicDance::from_files(dst_path, tle_path);
  EXPECT_EQ(pipeline.tracks().size(), 3u);
  EXPECT_EQ(pipeline.storms().size(), 1u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace cosmicdance::core
