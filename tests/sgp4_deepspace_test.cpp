// Deep-space (SDP4) branch coverage: the 12h/24h resonance code paths, the
// Lyddane low-inclination modification, and the g-table eccentricity
// branches of the half-day resonance initialisation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "orbit/elements.hpp"
#include "orbit/state.hpp"
#include "sgp4/sgp4.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance::sgp4 {
namespace {

using orbit::norm;

tle::Tle base_tle() {
  tle::Tle t;
  t.catalog_number = 20000;
  t.international_designator = "90001A";
  t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2022, 6, 15, 3));
  t.raan_deg = 75.0;
  t.arg_perigee_deg = 270.0;
  t.mean_anomaly_deg = 15.0;
  t.bstar = 0.0;
  return t;
}

double mean_radius_over_day(const Sgp4Propagator& propagator, double start_min) {
  double sum = 0.0;
  int count = 0;
  for (double m = start_min; m < start_min + 1440.0; m += 60.0, ++count) {
    sum += norm(propagator.propagate_minutes(m).position_km);
  }
  return sum / count;
}

// ---------------- synchronous (irez == 1) resonance ------------------------

TEST(DeepSpaceTest, GeoSynchronousResonanceStable) {
  tle::Tle t = base_tle();
  t.inclination_deg = 5.0;
  t.eccentricity = 2e-4;
  t.mean_motion_revday = 1.0027;
  const Sgp4Propagator propagator(t);
  ASSERT_TRUE(propagator.deep_space());
  const double r0 = mean_radius_over_day(propagator, 0.0);
  const double r60 = mean_radius_over_day(propagator, 60.0 * 1440.0);
  EXPECT_NEAR(r0, 42164.0, 120.0);
  // The resonance librates: mean radius wanders by km-scale, not hundreds.
  EXPECT_NEAR(r60, r0, 200.0);
}

TEST(DeepSpaceTest, InclinedGeoStable) {
  tle::Tle t = base_tle();
  t.inclination_deg = 15.0;  // inclined GSO (e.g. aging GEO birds)
  t.eccentricity = 5e-4;
  t.mean_motion_revday = 1.0027;
  const Sgp4Propagator propagator(t);
  for (double days = 0.0; days <= 40.0; days += 5.0) {
    EXPECT_NEAR(norm(propagator.propagate_minutes(days * 1440.0).position_km),
                42164.0, 300.0)
        << days;
  }
}

// ---------------- half-day (irez == 2) resonance ----------------------------
// The g-table has branches at e <= 0.65, e > 0.65, e > 0.715, e < 0.7.

class MolniyaEccentricity : public ::testing::TestWithParam<double> {};

TEST_P(MolniyaEccentricity, PropagatesPhysically) {
  const double ecc = GetParam();
  tle::Tle t = base_tle();
  t.inclination_deg = 63.4;
  t.eccentricity = ecc;
  t.mean_motion_revday = 2.0057;  // ~12 h period -> irez == 2 when e >= 0.5
  const Sgp4Propagator propagator(t);
  ASSERT_TRUE(propagator.deep_space());

  const double a = orbit::sma_from_mean_motion_revday(2.0057);
  for (double days = 0.0; days <= 20.0; days += 1.0) {
    const double r = norm(propagator.propagate_minutes(days * 1440.0).position_km);
    EXPECT_GT(r, a * (1.0 - ecc) * 0.9) << "e=" << ecc << " d=" << days;
    EXPECT_LT(r, a * (1.0 + ecc) * 1.1) << "e=" << ecc << " d=" << days;
  }
}

INSTANTIATE_TEST_SUITE_P(GTableBranches, MolniyaEccentricity,
                         ::testing::Values(0.55, 0.66, 0.70, 0.72, 0.74));

// ---------------- Lyddane modification (inclination < ~11.5 deg) ------------

class LowInclination : public ::testing::TestWithParam<double> {};

TEST_P(LowInclination, DpperLyddaneBranchStable) {
  tle::Tle t = base_tle();
  t.inclination_deg = GetParam();
  t.eccentricity = 3e-4;
  t.mean_motion_revday = 1.0027;
  const Sgp4Propagator propagator(t);
  for (double days = 0.0; days <= 30.0; days += 3.0) {
    const auto sv = propagator.propagate_minutes(days * 1440.0);
    EXPECT_NEAR(norm(sv.position_km), 42164.0, 300.0)
        << "i=" << GetParam() << " d=" << days;
    // Velocity magnitude ~3.07 km/s at GEO.
    EXPECT_NEAR(norm(sv.velocity_kms), 3.07, 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(Inclinations, LowInclination,
                         ::testing::Values(0.01, 0.5, 3.0, 9.0, 11.0, 12.0));

// ---------------- 12-hour non-resonant (irez == 0 deep space) ---------------

TEST(DeepSpaceTest, TwelveHourLowEccentricityNotResonant) {
  // n in the half-day band but e < 0.5: irez stays 0, pure lunisolar path.
  tle::Tle t = base_tle();
  t.inclination_deg = 55.0;
  t.eccentricity = 0.01;
  t.mean_motion_revday = 2.0057;
  const Sgp4Propagator propagator(t);
  ASSERT_TRUE(propagator.deep_space());
  const double a = orbit::sma_from_mean_motion_revday(2.0057);
  for (double days = 0.0; days <= 30.0; days += 2.0) {
    const double r = norm(propagator.propagate_minutes(days * 1440.0).position_km);
    EXPECT_NEAR(r, a, a * 0.05) << days;
  }
}

TEST(DeepSpaceTest, EightHourOrbitDeepSpaceNoResonance) {
  tle::Tle t = base_tle();
  t.inclination_deg = 28.0;
  t.eccentricity = 0.1;
  t.mean_motion_revday = 3.0;  // 8 h period: deep space, no resonance band
  const Sgp4Propagator propagator(t);
  ASSERT_TRUE(propagator.deep_space());
  const double a = orbit::sma_from_mean_motion_revday(3.0);
  for (double days = 0.0; days <= 15.0; days += 1.5) {
    const double r = norm(propagator.propagate_minutes(days * 1440.0).position_km);
    EXPECT_GT(r, a * 0.85);
    EXPECT_LT(r, a * 1.15);
  }
}

// ---------------- retrograde & polar deep space ------------------------------

TEST(DeepSpaceTest, RetrogradeGeoLikeOrbit) {
  tle::Tle t = base_tle();
  t.inclination_deg = 170.0;
  t.eccentricity = 1e-3;
  t.mean_motion_revday = 1.1;
  const Sgp4Propagator propagator(t);
  for (double days = 0.0; days <= 10.0; days += 1.0) {
    EXPECT_GT(norm(propagator.propagate_minutes(days * 1440.0).position_km),
              30000.0);
  }
}

TEST(DeepSpaceTest, LunarSolarPeriodicsBounded) {
  // The dpper contributions must stay small for a GEO orbit: eccentricity
  // perturbations are O(1e-4..1e-3), not order unity.
  tle::Tle t = base_tle();
  t.inclination_deg = 7.0;
  t.eccentricity = 4e-4;
  t.mean_motion_revday = 1.0027;
  const Sgp4Propagator propagator(t);
  double r_min = 1e12;
  double r_max = 0.0;
  for (double days = 0.0; days <= 60.0; days += 0.7) {
    const double r = norm(propagator.propagate_minutes(days * 1440.0).position_km);
    r_min = std::min(r_min, r);
    r_max = std::max(r_max, r);
  }
  // Radial excursion stays within ~0.5% over two months.
  EXPECT_LT((r_max - r_min) / 42164.0, 0.005);
}

TEST(DeepSpaceTest, BackwardAndForwardIntegrationConsistent) {
  tle::Tle t = base_tle();
  t.inclination_deg = 63.4;
  t.eccentricity = 0.7;
  t.mean_motion_revday = 2.0057;
  const Sgp4Propagator propagator(t);
  // Interleave far-forward, backward, and near-epoch calls: the resonance
  // integrator must restart cleanly (cache invalidation paths).
  const auto a1 = propagator.propagate_minutes(10.0 * 1440.0);
  const auto b1 = propagator.propagate_minutes(-5.0 * 1440.0);
  const auto a2 = propagator.propagate_minutes(10.0 * 1440.0);
  const auto b2 = propagator.propagate_minutes(-5.0 * 1440.0);
  EXPECT_NEAR(norm(orbit::sub(a1.position_km, a2.position_km)), 0.0, 1e-6);
  EXPECT_NEAR(norm(orbit::sub(b1.position_km, b2.position_km)), 0.0, 1e-6);
}

}  // namespace
}  // namespace cosmicdance::sgp4
