// cdlint corpus: seeded violations for rule `stdout-in-lib` (R6).
#include <cstdio>
#include <iostream>

void report(int value) {
  std::cout << "value=" << value << "\n";
  printf("value=%d\n", value);
}
