// cosmicdance — command-line front end, mirroring how the original tool is
// driven: generate/ingest data, list storms, and export figure-ready CSVs.
//
//   cosmicdance gen-dst   --preset paper|superstorm|historical|carrington
//                         --out dst.wdc [--seed N]
//   cosmicdance simulate  --dst dst.wdc --scenario paper|may2024|feb2022|figure3|l1
//                         --out catalog.tle [--per-batch N --cadence D --fleet N --seed N]
//   cosmicdance storms    --dst dst.wdc [--threshold NT] [--csv storms.csv]
//   cosmicdance analyze   --dst dst.wdc --tles catalog.tle --out-dir DIR
//   cosmicdance propagate --tles catalog.tle [--days N --step-hours H --top N]
//   cosmicdance report    --dst dst.wdc --tles catalog.tle
#include <algorithm>
#include <filesystem>
#include <iostream>

#include "common/error.hpp"
#include "core/export.hpp"
#include "diag/diag.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "tle/omm.hpp"
#include "io/args.hpp"
#include "io/file.hpp"
#include "io/table.hpp"
#include "obs/obs.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"
#include "spaceweather/wdc.hpp"
#include "stats/descriptive.hpp"

using namespace cosmicdance;

namespace {

int usage() {
  std::cout <<
      "cosmicdance — measuring LEO orbital shifts due to solar radiations\n"
      "\n"
      "subcommands:\n"
      "  gen-dst   --preset paper|superstorm|historical|carrington --out F [--seed N]\n"
      "  simulate  --dst F --scenario paper|may2024|feb2022|figure3|l1 --out F\n"
      "            [--per-batch N] [--cadence DAYS] [--fleet N] [--seed N]\n"
      "  storms    --dst F [--threshold NT] [--csv F]\n"
      "  convert   --tles F --to-omm F | --omm F --to-tles F\n"
      "  analyze   --dst F --tles F --out-dir DIR [--threads N] [--cache-dir DIR]\n"
      "  propagate --tles F [--days N] [--step-hours H] [--top N] [--csv F]\n"
      "            [--threads N]  (batch SGP4: full-state altitude series and\n"
      "            decay-rate estimates for every satellite's latest TLE)\n"
      "  report    --dst F --tles F [--markdown F] [--threads N] [--cache-dir DIR]\n"
      "\n"
      "--threads N: pipeline worker count (0 = all hardware threads,\n"
      "             1 = serial; results are identical either way)\n"
      "--parse-policy strict|tolerant (storms/convert/analyze/report):\n"
      "             strict (default) aborts on the first malformed record;\n"
      "             tolerant quarantines it, keeps going, and reports\n"
      "--quality-report F: write the ingestion data-quality report\n"
      "             (.json = full report, otherwise quarantine CSV)\n"
      "--metrics F (analyze/report): write run metrics — phase wall times,\n"
      "             work counters, gauges (.csv = flat rows, else JSON);\n"
      "             work counters are bit-identical at every --threads value\n"
      "--trace F (analyze/report): write a Chrome trace_event JSON timeline\n"
      "             (open in about:tracing or ui.perfetto.dev)\n"
      "--cache-dir DIR (analyze/report): binary snapshot cache of parsed\n"
      "             inputs; a warm run with unchanged inputs skips text\n"
      "             parsing, and inputs that only grew by appended records\n"
      "             reparse just the tail (stored as delta layers, compacted\n"
      "             automatically); results are bit-identical either way\n";
  return 2;
}

std::string require(const io::ArgParser& args, const std::string& name) {
  const auto value = args.option(name);
  if (!value.has_value()) {
    throw ParseError("missing required option --" + name);
  }
  return *value;
}

diag::ParsePolicy parse_policy(const io::ArgParser& args) {
  return diag::parse_policy_from_string(
      args.option_or("parse-policy", "strict"));
}

/// Honour --quality-report and print a summary whenever ingestion had
/// anything to say (always under the tolerant policy, so a clean run is
/// visibly clean).
void emit_quality_report(const io::ArgParser& args,
                         const diag::DataQualityReport& report) {
  if (const auto path = args.option("quality-report")) {
    if (path->size() >= 5 && path->compare(path->size() - 5, 5, ".json") == 0) {
      io::write_file(*path, report.to_json());
    } else {
      io::write_csv_file(*path, report.quarantine_rows());
    }
    std::cout << "wrote quality report to " << *path << "\n";
  }
  if (report.policy == diag::ParsePolicy::kTolerant ||
      report.total_quarantined() > 0 || report.total_repaired() > 0) {
    report.print(std::cout);
  }
}

int cmd_gen_dst(const io::ArgParser& args) {
  args.check_known({"preset", "out", "seed"});
  const std::string preset = args.option_or("preset", "paper");
  spaceweather::DstGeneratorConfig config;
  if (preset == "paper") {
    config = spaceweather::DstGenerator::paper_window_2020_2024();
  } else if (preset == "superstorm") {
    config = spaceweather::DstGenerator::with_may_2024_superstorm();
  } else if (preset == "historical") {
    config = spaceweather::DstGenerator::historical_50_years();
  } else if (preset == "carrington") {
    config = spaceweather::DstGenerator::carrington_what_if();
  } else {
    throw ParseError("unknown preset: " + preset);
  }
  config.seed = static_cast<std::uint64_t>(
      args.integer_or("seed", static_cast<long>(config.seed)));
  const auto dst = spaceweather::DstGenerator(config).generate();
  spaceweather::write_wdc_file(require(args, "out"), dst);
  std::cout << "wrote " << dst.size() << " hourly Dst records ("
            << dst.start_datetime().to_string() << " ...) to "
            << require(args, "out") << "\n";
  return 0;
}

int cmd_simulate(const io::ArgParser& args) {
  args.check_known(
      {"dst", "scenario", "out", "per-batch", "cadence", "fleet", "seed"});
  const auto dst = spaceweather::read_wdc_file(require(args, "dst"));
  const std::string name = args.option_or("scenario", "paper");
  const auto seed = static_cast<std::uint64_t>(args.integer_or("seed", 7));

  simulation::ConstellationConfig config;
  if (name == "paper") {
    config = simulation::scenario::paper_window(
        &dst, static_cast<int>(args.integer_or("per-batch", 8)),
        args.number_or("cadence", 12.0), seed);
  } else if (name == "may2024") {
    config = simulation::scenario::may_2024(
        &dst, static_cast<int>(args.integer_or("fleet", 1500)), seed);
  } else if (name == "feb2022") {
    config = simulation::scenario::feb_2022(&dst, seed);
  } else if (name == "figure3") {
    config = simulation::scenario::figure3(&dst, seed);
  } else if (name == "l1") {
    config = simulation::scenario::launch_l1(&dst, seed);
  } else {
    throw ParseError("unknown scenario: " + name);
  }

  auto result = simulation::ConstellationSimulator(config).run();
  io::write_file(require(args, "out"), result.catalog.to_text());
  std::cout << "simulated " << result.launched << " satellites; wrote "
            << result.catalog.record_count() << " TLEs for "
            << result.catalog.satellite_count() << " satellites to "
            << require(args, "out") << "\n"
            << "failures: " << result.failures.size()
            << ", reentered: " << result.reentered << "\n";
  return 0;
}

int cmd_storms(const io::ArgParser& args) {
  args.check_known({"dst", "threshold", "csv", "parse-policy", "quality-report"});
  diag::ParseLog log(parse_policy(args));
  const auto dst = spaceweather::read_wdc_file(require(args, "dst"), &log);
  emit_quality_report(args, log.report());
  spaceweather::StormDetectorConfig detector_config;
  detector_config.threshold_nt = args.number_or("threshold", -50.0);
  const auto storms =
      spaceweather::StormDetector(detector_config).detect(dst);

  if (const auto csv_path = args.option("csv")) {
    io::write_csv_file(*csv_path, core::storms_csv(storms));
    std::cout << "wrote " << storms.size() << " storms to " << *csv_path << "\n";
    return 0;
  }
  io::TablePrinter table({"onset", "peak nT", "category", "hours"});
  for (const auto& storm : storms) {
    table.add_row({storm.start_datetime().to_string().substr(0, 16),
                   io::TablePrinter::num(storm.peak_dst_nt, 1),
                   spaceweather::to_string(storm.category),
                   std::to_string(storm.duration_hours())});
  }
  table.print(std::cout);
  return 0;
}

/// True when the command line asks for any observability output; the
/// registry is only wired into the pipeline when something will read it.
bool wants_observability(const io::ArgParser& args) {
  return args.option("metrics").has_value() || args.option("trace").has_value();
}

/// Honour --metrics (.csv = flat rows, otherwise JSON) and --trace
/// (Chrome trace_event JSON).
void emit_observability(const io::ArgParser& args, const obs::Metrics& metrics) {
  if (const auto path = args.option("metrics")) {
    const obs::MetricsReport report = metrics.snapshot();
    if (path->size() >= 4 && path->compare(path->size() - 4, 4, ".csv") == 0) {
      io::write_csv_file(*path, report.metric_rows());
    } else {
      io::write_file(*path, report.to_json());
    }
    std::cout << "wrote metrics to " << *path << "\n";
  }
  if (const auto path = args.option("trace")) {
    io::write_file(*path, metrics.trace_json());
    std::cout << "wrote trace to " << *path << "\n";
  }
}

core::CosmicDance load_pipeline(const io::ArgParser& args,
                                obs::Metrics* metrics = nullptr) {
  core::PipelineConfig config;
  config.num_threads =
      static_cast<int>(args.nonnegative_integer_or("threads", 0));
  config.parse_policy = parse_policy(args);
  config.metrics = metrics;
  config.cache_dir = args.option_or("cache-dir", "");
  core::CosmicDance pipeline = core::CosmicDance::from_files(
      require(args, "dst"), require(args, "tles"), config);
  emit_quality_report(args, pipeline.quality_report());
  return pipeline;
}

int cmd_analyze(const io::ArgParser& args) {
  args.check_known({"dst", "tles", "out-dir", "threads", "parse-policy",
                    "quality-report", "metrics", "trace", "cache-dir"});
  const std::string out_dir = require(args, "out-dir");
  std::filesystem::create_directories(out_dir);
  obs::Metrics observability;
  obs::Metrics* metrics = wants_observability(args) ? &observability : nullptr;
  const core::CosmicDance pipeline = load_pipeline(args, metrics);
  auto path = [&](const char* name) { return out_dir + "/" + name; };

  // Fig 1: intensity CDF.
  {
    std::vector<double> values(pipeline.dst().values().begin(),
                               pipeline.dst().values().end());
    io::write_csv_file(path("fig01_intensity_cdf.csv"),
                       core::ecdf_csv(stats::Ecdf(values), "dst_nt"));
  }
  // Fig 2 raw material + storm catalog.
  io::write_csv_file(path("storms.csv"), core::storms_csv(pipeline.storms()));
  // Fig 5(a)/(b)/(c).
  const double p80 = pipeline.dst_threshold_at_percentile(80.0);
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  const auto quiet = pipeline.altitude_changes_for_quiet(p80, 30);
  if (!quiet.empty()) {
    io::write_csv_file(path("fig05a_quiet_altitude_change_cdf.csv"),
                       core::ecdf_csv(stats::Ecdf(quiet), "alt_change_km"));
  }
  const auto storm_changes = pipeline.altitude_changes_for_storms(p95);
  if (!storm_changes.empty()) {
    io::write_csv_file(path("fig05b_storm_altitude_change_cdf.csv"),
                       core::ecdf_csv(stats::Ecdf(storm_changes), "alt_change_km"));
  }
  const auto drag = pipeline.drag_changes_for_storms(p95);
  if (!drag.empty()) {
    io::write_csv_file(path("fig05c_drag_change_cdf.csv"),
                       core::ecdf_csv(stats::Ecdf(drag), "bstar_ratio"));
  }
  // Fig 10 raw/cleaned altitude CDFs.
  const int threads = pipeline.config().num_threads;
  const auto raw = core::all_altitudes(pipeline.raw_tracks(), threads, metrics);
  const auto cleaned = core::all_altitudes(pipeline.tracks(), threads, metrics);
  io::write_csv_file(path("fig10a_raw_altitude_cdf.csv"),
                     core::ecdf_csv(stats::Ecdf(raw), "altitude_km"));
  io::write_csv_file(path("fig10b_clean_altitude_cdf.csv"),
                     core::ecdf_csv(stats::Ecdf(cleaned), "altitude_km"));

  std::cout << "analysis CSVs written to " << out_dir << "\n";
  if (metrics != nullptr) emit_observability(args, *metrics);
  return 0;
}

int cmd_convert(const io::ArgParser& args) {
  args.check_known(
      {"tles", "to-omm", "omm", "to-tles", "parse-policy", "quality-report"});
  diag::ParseLog log(parse_policy(args));
  if (const auto out = args.option("to-omm")) {
    tle::TleCatalog catalog;
    catalog.add_from_file(require(args, "tles"), tle::IngestOptions{&log, 0, {}});
    emit_quality_report(args, log.report());
    io::write_file(*out, tle::catalog_to_omm_kvn(catalog));
    std::cout << "wrote " << catalog.record_count() << " OMM messages to "
              << *out << "\n";
    return 0;
  }
  if (const auto out = args.option("to-tles")) {
    tle::TleCatalog catalog;
    const std::string omm_path = require(args, "omm");
    static_cast<void>(tle::catalog_add_from_omm_kvn(
        catalog, io::read_file(omm_path), &log, omm_path));
    emit_quality_report(args, log.report());
    io::write_file(*out, catalog.to_text());
    std::cout << "wrote " << catalog.record_count() << " TLEs to " << *out
              << "\n";
    return 0;
  }
  throw ParseError("convert needs --to-omm or --to-tles");
}

int cmd_propagate(const io::ArgParser& args) {
  args.check_known({"tles", "days", "step-hours", "top", "csv", "threads",
                    "parse-policy", "quality-report", "metrics", "trace"});
  obs::Metrics observability;
  obs::Metrics* metrics = wants_observability(args) ? &observability : nullptr;

  diag::ParseLog log(parse_policy(args));
  tle::TleCatalog catalog;
  const int threads =
      static_cast<int>(args.nonnegative_integer_or("threads", 0));
  catalog.add_from_file(require(args, "tles"),
                        tle::IngestOptions{&log, threads, {}, metrics});
  emit_quality_report(args, log.report());

  core::PropagationOptions options;
  options.default_span_days = args.number_or("days", 30.0);
  options.step_hours = args.number_or("step-hours", 24.0);
  options.num_threads = threads;
  options.metrics = metrics;
  const core::PropagationReport report =
      core::propagate_catalog(catalog, options);

  if (const auto csv_path = args.option("csv")) {
    std::vector<io::CsvRow> rows;
    rows.push_back({"catalog_number", "tle_epoch_jd", "deep_space",
                    "valid_samples", "decay_rate_km_per_day",
                    "first_altitude_km", "last_altitude_km", "decayed"});
    for (const auto& series : report.series) {
      rows.push_back({std::to_string(series.catalog_number),
                      io::TablePrinter::num(series.tle_epoch_jd, 6),
                      series.deep_space ? "1" : "0",
                      std::to_string(series.valid_samples),
                      io::TablePrinter::num(series.decay_rate_km_per_day, 6),
                      io::TablePrinter::num(series.first_altitude_km, 3),
                      io::TablePrinter::num(series.last_altitude_km, 3),
                      series.decayed ? "1" : "0"});
    }
    io::write_csv_file(*csv_path, rows);
    std::cout << "wrote " << report.series.size()
              << " propagated satellites to " << *csv_path << "\n";
  }

  io::print_heading(std::cout, "Fleet propagation");
  std::cout << "  satellites: " << report.series.size() << "   grid epochs: "
            << report.epochs_jd.size() << "   span: "
            << io::TablePrinter::num(report.epochs_jd.empty()
                                         ? 0.0
                                         : report.epochs_jd.back() -
                                               report.epochs_jd.front(),
                                     1)
            << " days\n"
            << "  cells ok: " << report.ok_cells << "   decayed: "
            << report.decayed_cells << "   errors: " << report.error_cells
            << "   init failures: " << report.init_failures.size() << "\n";

  // Fastest-decaying satellites — the reentry-risk shortlist.
  std::vector<const core::PropagationSeries*> ranked;
  ranked.reserve(report.series.size());
  for (const auto& series : report.series) {
    if (series.valid_samples >= 2) ranked.push_back(&series);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
    if (a->decay_rate_km_per_day != b->decay_rate_km_per_day) {
      return a->decay_rate_km_per_day < b->decay_rate_km_per_day;
    }
    return a->catalog_number < b->catalog_number;
  });
  const auto top = static_cast<std::size_t>(
      args.nonnegative_integer_or("top", 10));
  io::TablePrinter table({"catalog", "km/day", "first km", "last km", "reentry"});
  for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
    const auto& series = *ranked[i];
    table.add_row({std::to_string(series.catalog_number),
                   io::TablePrinter::num(series.decay_rate_km_per_day, 3),
                   io::TablePrinter::num(series.first_altitude_km, 1),
                   io::TablePrinter::num(series.last_altitude_km, 1),
                   series.decayed ? "yes" : "no"});
  }
  table.print(std::cout);
  if (metrics != nullptr) emit_observability(args, *metrics);
  return 0;
}

int cmd_report(const io::ArgParser& args) {
  args.check_known({"dst", "tles", "markdown", "threads", "parse-policy", "cache-dir",
                    "quality-report", "metrics", "trace"});
  obs::Metrics observability;
  obs::Metrics* metrics = wants_observability(args) ? &observability : nullptr;
  const core::CosmicDance pipeline = load_pipeline(args, metrics);
  if (const auto out = args.option("markdown")) {
    core::write_markdown_report(pipeline, *out);
    std::cout << "wrote markdown report to " << *out << "\n";
    if (metrics != nullptr) emit_observability(args, *metrics);
    return 0;
  }

  io::print_heading(std::cout, "Dataset");
  std::cout << "  Dst hours: " << pipeline.dst().size() << " from "
            << pipeline.dst().start_datetime().to_string() << "\n"
            << "  satellites: " << pipeline.tracks().size() << "   TLEs: "
            << pipeline.catalog().record_count() << "\n";

  io::print_heading(std::cout, "Solar activity");
  const auto hours = spaceweather::StormDetector::category_hours(pipeline.dst());
  for (const auto& [category, count] : hours) {
    std::cout << "  " << spaceweather::to_string(category) << " hours: " << count
              << "\n";
  }
  std::cout << "  99th-ptile intensity: "
            << pipeline.dst_threshold_at_percentile(99.0) << " nT\n";

  io::print_heading(std::cout, "Happens-closely-after impact");
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  const auto changes = pipeline.altitude_changes_for_storms(p95);
  if (!changes.empty()) {
    const auto s = stats::summarize(changes);
    std::cout << "  altitude change after >95th-ptile storms (" << s.count
              << " samples): median " << io::TablePrinter::num(s.median, 2)
              << " km, p95 " << io::TablePrinter::num(s.p95, 2) << " km, max "
              << io::TablePrinter::num(s.max, 1) << " km\n";
  } else {
    std::cout << "  no storm-epoch samples in this dataset\n";
  }
  if (metrics != nullptr) emit_observability(args, *metrics);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const io::ArgParser args(argc, argv);
    const std::string& command = args.command();
    if (command == "gen-dst") return cmd_gen_dst(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "storms") return cmd_storms(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "propagate") return cmd_propagate(args);
    if (command == "report") return cmd_report(args);
    return usage();
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
