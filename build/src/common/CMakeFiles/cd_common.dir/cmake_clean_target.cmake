file(REMOVE_RECURSE
  "libcd_common.a"
)
