#include "core/maneuvers.hpp"

#include <algorithm>
#include <cmath>

namespace cosmicdance::core {

std::vector<ManeuverEvent> detect_maneuvers(const SatelliteTrack& track,
                                            const ManeuverDetectorConfig& config) {
  std::vector<ManeuverEvent> events;
  const auto& samples = track.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double gap_days = samples[i].epoch_jd - samples[i - 1].epoch_jd;
    if (gap_days <= 0.0 || gap_days > config.max_gap_days) continue;
    const double delta = samples[i].altitude_km - samples[i - 1].altitude_km;
    const double rate = delta / gap_days;
    if (std::fabs(delta) >= config.min_step_km &&
        std::fabs(rate) >= config.min_rate_km_per_day) {
      events.push_back({track.catalog_number(), samples[i].epoch_jd, delta, rate});
    }
  }
  return events;
}

std::vector<ManeuverEvent> detect_maneuvers(std::span<const SatelliteTrack> tracks,
                                            const ManeuverDetectorConfig& config) {
  std::vector<ManeuverEvent> events;
  for (const SatelliteTrack& track : tracks) {
    const auto track_events = detect_maneuvers(track, config);
    events.insert(events.end(), track_events.begin(), track_events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const ManeuverEvent& a, const ManeuverEvent& b) {
              return a.jd < b.jd;
            });
  return events;
}

ManeuverContamination maneuver_contamination(
    std::span<const SatelliteTrack> tracks, std::span<const double> event_jds,
    double window_days, const ManeuverDetectorConfig& config) {
  ManeuverContamination result;
  for (const SatelliteTrack& track : tracks) {
    const auto maneuvers = detect_maneuvers(track, config);
    for (const double event_jd : event_jds) {
      ++result.candidates;
      for (const ManeuverEvent& maneuver : maneuvers) {
        if (maneuver.jd >= event_jd && maneuver.jd < event_jd + window_days) {
          ++result.near_maneuver;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace cosmicdance::core
