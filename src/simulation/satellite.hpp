// Satellite lifecycle model for the constellation simulator.
//
// Mirrors the Starlink concept of operations the paper describes: launch to
// a ~350 km staging orbit, a testing dwell, orbit raising to the operational
// shell, ~5 years of station-kept service, then controlled de-orbit — with
// storm-induced deviations (temporary outages, permanent uncontrolled decay,
// staging-orbit loss) layered on top.
#pragma once

#include <string>

#include "timeutil/datetime.hpp"

namespace cosmicdance::simulation {

/// Physical and orbital configuration of one satellite.
struct SatelliteConfig {
  double mass_kg = 260.0;
  /// Cd*A/m (m^2/kg) while station-kept (knife-edge attitude).
  double ballistic_operational = 0.004;
  /// Cd*A/m while uncontrolled/tumbling (panel broadside dominates, plus
  /// storm-time model underestimate folded in; see DESIGN.md).
  double ballistic_uncontrolled = 0.3;
  /// Cd*A/m in the staging/raising configuration.
  double ballistic_staging = 0.02;

  double staging_altitude_km = 350.0;
  double target_altitude_km = 550.0;
  double inclination_deg = 53.05;
  double eccentricity = 8.0e-4;
};

/// Lifecycle mode.  The distinction between kOutage (recovers) and
/// kDecaying (never recovers) is what produces the paper's short- vs
/// long-term orbital decay after storms.
enum class SatelliteMode {
  kStaging,      ///< parked at the staging orbit for checkout
  kRaising,      ///< electric-propulsion raise toward the target shell
  kOperational,  ///< station-kept at the target shell
  kOutage,       ///< temporarily uncontrolled (storm upset), will recover
  kDecaying,     ///< permanently uncontrolled, decaying
  kDeorbiting,   ///< end-of-life controlled descent
  kReentered,    ///< below the reentry altitude; no longer tracked
};

[[nodiscard]] std::string to_string(SatelliteMode mode);

/// True for modes in which the satellite is uncontrolled (tumbling drag).
[[nodiscard]] bool is_uncontrolled(SatelliteMode mode) noexcept;

/// Full dynamic state of one simulated satellite.
struct SatelliteState {
  int catalog_number = 0;
  std::string international_designator;
  SatelliteConfig config;

  SatelliteMode mode = SatelliteMode::kStaging;
  double altitude_km = 350.0;  ///< mean (SMA-derived) altitude
  double raan_deg = 0.0;
  double arg_perigee_deg = 90.0;
  double mean_anomaly_deg = 0.0;

  double launch_jd = 0.0;
  double staging_until_jd = 0.0;   ///< checkout dwell end
  double outage_until_jd = 0.0;    ///< recovery time when in kOutage
  double deorbit_after_jd = 0.0;   ///< end of service life

  /// Effective ballistic coefficient for the current mode.
  [[nodiscard]] double ballistic_m2_kg() const noexcept;

  /// Tracked means "has not reentered".
  [[nodiscard]] bool tracked() const noexcept {
    return mode != SatelliteMode::kReentered;
  }
};

/// J2 secular RAAN drift (deg/day) for a circular orbit.
[[nodiscard]] double raan_rate_deg_per_day(double altitude_km,
                                           double inclination_deg) noexcept;

/// J2 secular argument-of-perigee drift (deg/day) for a circular orbit.
[[nodiscard]] double argp_rate_deg_per_day(double altitude_km,
                                           double inclination_deg) noexcept;

}  // namespace cosmicdance::simulation
