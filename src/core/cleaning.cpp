#include "core/cleaning.hpp"

#include <algorithm>
#include <cmath>

#include "exec/parallel_for.hpp"
#include "obs/obs.hpp"
#include "stats/descriptive.hpp"

namespace cosmicdance::core {

std::size_t remove_outliers(SatelliteTrack& track, const CleaningConfig& config) {
  const std::size_t before = track.size();
  std::vector<TrajectorySample> kept;
  kept.reserve(before);
  for (const TrajectorySample& sample : track.samples()) {
    if (sample.altitude_km > config.outlier_min_altitude_km &&
        sample.altitude_km <= config.outlier_max_altitude_km) {
      kept.push_back(sample);
    }
  }
  track.set_samples(std::move(kept));
  return before - track.size();
}

std::size_t remove_orbit_raising(SatelliteTrack& track,
                                 const CleaningConfig& config) {
  if (track.empty()) return 0;
  std::vector<double> altitudes;
  altitudes.reserve(track.size());
  for (const TrajectorySample& s : track.samples()) {
    altitudes.push_back(s.altitude_km);
  }
  const double shell = stats::percentile(altitudes, config.shell_percentile);

  const auto& samples = track.samples();
  std::size_t first_at_shell = samples.size();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].altitude_km >= shell - config.raise_margin_km) {
      first_at_shell = i;
      break;
    }
  }
  if (first_at_shell == 0 || first_at_shell == samples.size()) return 0;
  std::vector<TrajectorySample> kept(samples.begin() +
                                         static_cast<std::ptrdiff_t>(first_at_shell),
                                     samples.end());
  const std::size_t removed = first_at_shell;
  track.set_samples(std::move(kept));
  return removed;
}

bool is_pre_decayed(const SatelliteTrack& track, double event_jd,
                    const CleaningConfig& config) {
  if (track.empty()) return true;
  const TrajectorySample* pre = track.at_or_before(event_jd);
  if (pre == nullptr) return true;
  if (event_jd - pre->epoch_jd > config.pre_event_max_gap_days) return true;
  return std::fabs(pre->altitude_km - track.median_altitude_km()) >
         config.predecay_threshold_km;
}

std::vector<SatelliteTrack> clean_tracks(std::vector<SatelliteTrack> tracks,
                                         const CleaningConfig& config,
                                         int num_threads, obs::Metrics* metrics) {
  const obs::ScopedPhase phase(metrics, "clean.tracks");
  // Relaxed atomic adds commute, so the totals are bit-identical at every
  // thread count even though workers interleave (DESIGN.md §11).
  obs::Counter* outliers =
      obs::counter_or_null(metrics, "clean.outlier_samples_removed");
  obs::Counter* raising =
      obs::counter_or_null(metrics, "clean.raising_samples_removed");
  exec::parallel_for(
      tracks.size(), num_threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          obs::bump(outliers, remove_outliers(tracks[i], config));
          obs::bump(raising, remove_orbit_raising(tracks[i], config));
        }
      },
      metrics);
  std::vector<SatelliteTrack> cleaned;
  cleaned.reserve(tracks.size());
  std::uint64_t dropped = 0;
  for (SatelliteTrack& track : tracks) {
    if (!track.empty()) {
      cleaned.push_back(std::move(track));
    } else {
      ++dropped;
    }
  }
  if (metrics != nullptr) {
    metrics->counter("clean.tracks_kept").add(cleaned.size());
    metrics->counter("clean.tracks_dropped").add(dropped);
  }
  return cleaned;
}

}  // namespace cosmicdance::core
