// Kepler's equation and anomaly conversions.
#pragma once

namespace cosmicdance::orbit {

/// Solve Kepler's equation M = E - e*sin(E) for the eccentric anomaly E.
/// Newton-Raphson with Vallado's initial guess; converges for all e in
/// [0, 1).  Inputs in radians, output wrapped to [0, 2*pi).  Throws
/// ValidationError for e outside [0,1).
[[nodiscard]] double solve_kepler(double mean_anomaly_rad, double eccentricity,
                                  double tolerance = 1e-12, int max_iterations = 50);

/// True anomaly from eccentric anomaly.
[[nodiscard]] double true_from_eccentric(double eccentric_anomaly_rad,
                                         double eccentricity);

/// Eccentric anomaly from true anomaly.
[[nodiscard]] double eccentric_from_true(double true_anomaly_rad,
                                         double eccentricity);

/// Mean anomaly from eccentric anomaly (Kepler's equation forward).
[[nodiscard]] double mean_from_eccentric(double eccentric_anomaly_rad,
                                         double eccentricity);

}  // namespace cosmicdance::orbit
