// cdlint corpus: negative scope case for rule `blocking-under-lock` (R11) —
// a blocking call under a lock outside src/serve/ is not judged; only the
// serving daemon's reader path has the latency contract.
#include <mutex>

std::mutex core_mutex_;

long read(int fd, char* buffer, unsigned long size);

long warm_cache(int fd) {
  char buffer[32];
  std::lock_guard<std::mutex> lock(core_mutex_);
  return read(fd, buffer, sizeof(buffer));
}
