file(REMOVE_RECURSE
  "CMakeFiles/extensions2_test.dir/extensions2_test.cpp.o"
  "CMakeFiles/extensions2_test.dir/extensions2_test.cpp.o.d"
  "extensions2_test"
  "extensions2_test.pdb"
  "extensions2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
