
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/cd_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/cleaning.cpp" "src/core/CMakeFiles/cd_core.dir/cleaning.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/cleaning.cpp.o.d"
  "/root/repo/src/core/conjunctions.cpp" "src/core/CMakeFiles/cd_core.dir/conjunctions.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/conjunctions.cpp.o.d"
  "/root/repo/src/core/correlator.cpp" "src/core/CMakeFiles/cd_core.dir/correlator.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/correlator.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/cd_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/export.cpp.o.d"
  "/root/repo/src/core/kessler.cpp" "src/core/CMakeFiles/cd_core.dir/kessler.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/kessler.cpp.o.d"
  "/root/repo/src/core/latitude.cpp" "src/core/CMakeFiles/cd_core.dir/latitude.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/latitude.cpp.o.d"
  "/root/repo/src/core/maneuvers.cpp" "src/core/CMakeFiles/cd_core.dir/maneuvers.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/maneuvers.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/cd_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/cd_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/cd_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/report.cpp.o.d"
  "/root/repo/src/core/shells.cpp" "src/core/CMakeFiles/cd_core.dir/shells.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/shells.cpp.o.d"
  "/root/repo/src/core/track.cpp" "src/core/CMakeFiles/cd_core.dir/track.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/track.cpp.o.d"
  "/root/repo/src/core/trigger.cpp" "src/core/CMakeFiles/cd_core.dir/trigger.cpp.o" "gcc" "src/core/CMakeFiles/cd_core.dir/trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeutil/CMakeFiles/cd_timeutil.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/cd_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/tle/CMakeFiles/cd_tle.dir/DependInfo.cmake"
  "/root/repo/build/src/sgp4/CMakeFiles/cd_sgp4.dir/DependInfo.cmake"
  "/root/repo/build/src/spaceweather/CMakeFiles/cd_spaceweather.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
