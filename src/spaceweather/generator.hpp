// Synthetic Dst synthesiser.
//
// Offline stand-in for the WDC Kyoto archive (see DESIGN.md substitution
// table).  Quiet-time behaviour is an AR(1) process around the climatological
// mean; storms are injected through the Burton ring-current ODE so main
// phase / recovery shapes are physical.  Named real events (the paper's
// anchor storms) are scripted at their historical dates and intensities;
// background storms arrive via a Poisson process.  Everything is
// deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "spaceweather/dst_index.hpp"

namespace cosmicdance::spaceweather {

/// A storm scripted at an exact onset time and observed peak Dst.
struct ScriptedStorm {
  timeutil::DateTime onset;       ///< start of the main phase
  double peak_dst_nt = -100.0;    ///< observed Dst at peak (negative)
  double main_phase_hours = 4.0;  ///< onset -> peak
  double plateau_hours = 0.0;     ///< hours held at peak before recovery
  double recovery_tau_hours = 10.0;
};

struct DstGeneratorConfig {
  std::uint64_t seed = 20240504;
  timeutil::DateTime start{2020, 1, 1, 0, 0, 0.0};
  long hours = 24 * 365;

  // Quiet-time AR(1) around the climatological mean.
  double quiet_mean_nt = -11.0;
  double quiet_sigma_nt = 7.0;   ///< stationary standard deviation
  double quiet_ar1 = 0.97;       ///< hourly autocorrelation

  // Poisson background storms (per year).
  bool include_random_storms = true;
  double minor_storms_per_year = 30.0;
  double moderate_storms_per_year = 3.8;

  /// Solar-cycle modulation of the background rates:
  ///   rate(t) = rate * (1 + amplitude * sin(2*pi*(t - peak)/period))
  /// clamped at >= 0.  Off by default (the 2020-2024 window sits on one
  /// rising flank); the 50-year preset turns it on so storm density follows
  /// the ~11-year cycle (Fig 8's visual texture).
  bool solar_cycle_modulation = false;
  double solar_cycle_period_years = 11.0;
  double solar_cycle_amplitude = 0.85;
  /// A solar-maximum reference time (cycle 23 peak ~ April 2000).
  timeutil::DateTime solar_cycle_peak{2000, 4, 1, 0, 0, 0.0};

  std::vector<ScriptedStorm> scripted_storms;
};

/// Generates hourly Dst series from a configuration.
class DstGenerator {
 public:
  explicit DstGenerator(DstGeneratorConfig config);

  /// Produce the full series (one value per hour from config.start).
  [[nodiscard]] DstIndex generate() const;

  /// The paper's measurement window: 2020-01-01 .. 2024-05-07, calibrated
  /// so the headline statistics match §4 (99th-ptile intensity ~ -63 nT;
  /// ~720 mild / ~74 moderate / exactly 3 severe hours; scripted events on
  /// 2022-01-29, 2023-03-24, 2023-04-24, 2023-09-18 (-112 nT, the Fig 4
  /// anchor) and 2024-03-03).
  [[nodiscard]] static DstGeneratorConfig paper_window_2020_2024();

  /// paper_window extended through June 2024 with the May 10-11 2024
  /// super-storm (peak ~ -412 nT, ~23 hours below -200 nT) — Fig 7.
  [[nodiscard]] static DstGeneratorConfig with_may_2024_superstorm();

  /// ~50-year record (1975..mid-2024) with the eight named historical
  /// storms of Fig 8 and a solar-cycle-modulated storm background.
  [[nodiscard]] static DstGeneratorConfig historical_50_years();

  /// What-if: the May-2024 window with the super-storm replaced by a
  /// Carrington-scale event (~ -1800 nT, the paper's recurring reference
  /// point for "are today's constellations ready?").
  [[nodiscard]] static DstGeneratorConfig carrington_what_if();

 private:
  void add_storm(std::vector<double>& storm_component, const ScriptedStorm& storm,
                 timeutil::HourIndex series_start) const;

  DstGeneratorConfig config_;
};

}  // namespace cosmicdance::spaceweather
