#!/usr/bin/env bash
# Tier-1 CI gate: build + full ctest twice —
#   1. plain RelWithDebInfo over the whole suite,
#   2. ThreadSanitizer (COSMICDANCE_SANITIZE=thread) over the parallel exec
#      suite, which must be race-free for the deterministic-ordering
#      contract to mean anything.
#
# Usage: tools/run_tier1.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== pass 1: plain build + full test suite =="
cmake -B build -S . -DCOSMICDANCE_SANITIZE=
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== pass 2: ThreadSanitizer build + parallel suite =="
cmake -B build-tsan -S . -DCOSMICDANCE_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target parallel_differential_test
# TSan halts with a non-zero exit on any race; no suppressions are used.
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R 'ParallelDifferential|ParallelForStress|ThreadPoolTest'

echo "== tier-1 gate: OK =="
