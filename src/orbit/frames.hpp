// Reference-frame conversions: TEME -> ECEF -> geodetic.
//
// SGP4 outputs TEME (true equator, mean equinox) states; geolocating a
// satellite requires rotating by GMST into an Earth-fixed frame and then an
// ellipsoidal geodetic conversion.  Polar motion is neglected (meters-level,
// irrelevant at km-scale analysis).
#pragma once

#include "orbit/state.hpp"

namespace cosmicdance::orbit {

/// Geodetic coordinates on the WGS-84 ellipsoid.
struct Geodetic {
  double latitude_rad = 0.0;   ///< [-pi/2, pi/2]
  double longitude_rad = 0.0;  ///< (-pi, pi]
  double altitude_km = 0.0;    ///< height above the ellipsoid
};

/// Rotate a TEME position into the pseudo Earth-fixed frame for the given
/// UT1 Julian date (rotation about Z by GMST).
[[nodiscard]] Vec3 teme_to_ecef(const Vec3& r_teme_km, double jd_ut1) noexcept;

/// Inverse rotation.
[[nodiscard]] Vec3 ecef_to_teme(const Vec3& r_ecef_km, double jd_ut1) noexcept;

/// ECEF -> geodetic via the iterative Bowring-style method.
[[nodiscard]] Geodetic ecef_to_geodetic(const Vec3& r_ecef_km) noexcept;

/// Geodetic -> ECEF.
[[nodiscard]] Vec3 geodetic_to_ecef(const Geodetic& geo) noexcept;

}  // namespace cosmicdance::orbit
