// Storm event segmentation over a Dst series (the paper's Figs 1-2, and the
// event anchors for every "happens closely after" analysis).
#pragma once

#include <map>
#include <vector>

#include "spaceweather/dst_index.hpp"
#include "spaceweather/gscale.hpp"

namespace cosmicdance::spaceweather {

/// One geomagnetic storm: a maximal contiguous run of hours with Dst at or
/// below the detection threshold.
struct StormEvent {
  timeutil::HourIndex start_hour = 0;  ///< first hour at/below threshold
  timeutil::HourIndex end_hour = 0;    ///< one past the last such hour
  double peak_dst_nt = 0.0;            ///< most negative hourly value
  timeutil::HourIndex peak_hour = 0;
  StormCategory category = StormCategory::kQuiet;  ///< classify(peak)

  [[nodiscard]] long duration_hours() const noexcept {
    return static_cast<long>(end_hour - start_hour);
  }
  [[nodiscard]] timeutil::DateTime start_datetime() const {
    return timeutil::datetime_from_hour_index(start_hour);
  }
};

/// Storm detector configuration.
struct StormDetectorConfig {
  /// Hours with Dst <= this value belong to a storm (NOAA's "high
  /// geomagnetic activity" convention).
  double threshold_nt = kMinorThresholdNt;
  /// Two runs separated by fewer than this many above-threshold hours are
  /// merged into one event (brief recoveries inside one storm).
  int merge_gap_hours = 0;
  /// Events shorter than this are dropped (0 keeps everything).
  int min_duration_hours = 1;
};

/// Segments a Dst series into storm events.
class StormDetector {
 public:
  explicit StormDetector(StormDetectorConfig config = {});

  /// All storm events, in time order.
  [[nodiscard]] std::vector<StormEvent> detect(const DstIndex& dst) const;

  /// Hours spent in each (non-quiet) category across the whole series —
  /// the paper's "720 hours mild / 74 hours moderate / 3 hours severe".
  [[nodiscard]] static std::map<StormCategory, long> category_hours(
      const DstIndex& dst);

  /// Durations (hours) of the detected events whose peak falls in the given
  /// category — the per-category duration distributions of Fig 2.
  [[nodiscard]] std::vector<double> durations_for_category(
      const DstIndex& dst, StormCategory category) const;

 private:
  StormDetectorConfig config_;
};

}  // namespace cosmicdance::spaceweather
