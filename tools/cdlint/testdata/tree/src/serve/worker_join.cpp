// cdlint corpus: the join half of the thread-no-join (R12) seeds in
// worker_spawn.cpp — keepers_ drains through the move + range-for alias
// chain, stable joins directly.
#include <thread>
#include <utility>
#include <vector>

extern std::vector<std::thread> keepers_;
extern std::thread stable;

void drain() {
  std::vector<std::thread> drained = std::move(keepers_);
  for (std::thread& worker : drained) {
    worker.join();
  }
  stable.join();
}
