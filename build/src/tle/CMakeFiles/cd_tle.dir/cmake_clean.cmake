file(REMOVE_RECURSE
  "CMakeFiles/cd_tle.dir/catalog.cpp.o"
  "CMakeFiles/cd_tle.dir/catalog.cpp.o.d"
  "CMakeFiles/cd_tle.dir/omm.cpp.o"
  "CMakeFiles/cd_tle.dir/omm.cpp.o.d"
  "CMakeFiles/cd_tle.dir/store.cpp.o"
  "CMakeFiles/cd_tle.dir/store.cpp.o.d"
  "CMakeFiles/cd_tle.dir/tle.cpp.o"
  "CMakeFiles/cd_tle.dir/tle.cpp.o.d"
  "libcd_tle.a"
  "libcd_tle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_tle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
