file(REMOVE_RECURSE
  "CMakeFiles/micro_pipeline.dir/micro_pipeline.cpp.o"
  "CMakeFiles/micro_pipeline.dir/micro_pipeline.cpp.o.d"
  "micro_pipeline"
  "micro_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
