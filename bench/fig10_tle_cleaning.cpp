// Fig 10: CDF of TLE-derived altitudes (a) before cleaning — long tail of
// tracking errors reaching tens of thousands of km — and (b) after removing
// the > 650 km outliers and the orbit-raising windows, revealing the
// operational shell plus a de-orbiting tail below 500 km.
#include <iostream>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst = bench::paper_dst();
  const core::CosmicDance pipeline(dst, bench::paper_catalog(dst));

  const auto raw = core::all_altitudes(pipeline.raw_tracks());
  const auto cleaned = core::all_altitudes(pipeline.tracks());

  io::print_heading(std::cout, "Fig 10(a): altitude CDF before cleaning");
  const stats::Ecdf raw_ecdf(raw);
  io::TablePrinter before({"quantile", "altitude_km"});
  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 0.9999, 1.0}) {
    before.add_row({io::TablePrinter::num(q, 4),
                    io::TablePrinter::num(raw_ecdf.quantile(q), 1)});
  }
  before.print(std::cout);
  bench::expect("max raw altitude (km)", "~40000", stats::max(raw), 0);

  io::print_heading(std::cout, "Fig 10(b): altitude CDF after cleaning");
  const stats::Ecdf clean_ecdf(cleaned);
  io::TablePrinter after({"quantile", "altitude_km"});
  for (const double q : {0.001, 0.01, 0.05, 0.10, 0.50, 0.90, 0.99, 1.0}) {
    after.add_row({io::TablePrinter::num(q, 4),
                   io::TablePrinter::num(clean_ecdf.quantile(q), 1)});
  }
  after.print(std::cout);

  io::print_heading(std::cout, "Cleaning summary");
  std::printf("  raw TLEs: %zu   cleaned TLEs: %zu   removed: %zu (%.2f%%)\n",
              raw.size(), cleaned.size(), raw.size() - cleaned.size(),
              100.0 * static_cast<double>(raw.size() - cleaned.size()) /
                  static_cast<double>(raw.size()));
  bench::expect("cleaned maximum (km)", "<= 650", stats::max(cleaned), 1);
  bench::expect("cleaned median (km; operational shell)", "~550",
                stats::median(cleaned), 1);
  bench::expect("fraction below 500 km (de-orbiting tail)", "small",
                clean_ecdf(500.0), 4);
  return 0;
}
