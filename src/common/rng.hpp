// Deterministic random number generation for simulators and generators.
//
// Every stochastic component in CosmicDance (Dst synthesis, tracking noise,
// launch jitter, failure draws) takes an explicit seed so that datasets,
// tests and benches are reproducible bit-for-bit across runs and machines.
// The core is xoshiro256**, seeded via splitmix64 (the standard recipe).
#pragma once

#include <array>
#include <cstdint>

namespace cosmicdance {

/// Deterministic, explicitly-seeded pseudo random number generator with the
/// distribution helpers the simulators need.  Satisfies
/// std::uniform_random_bit_generator so it can also drive <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit draw (xoshiro256**).
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal draw (Box-Muller, cached spare).
  [[nodiscard]] double normal() noexcept;
  /// Normal draw with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Exponential draw with the given mean (mean = 1/lambda).
  [[nodiscard]] double exponential(double mean) noexcept;
  /// Log-normal draw parameterised by the *underlying* normal mu/sigma.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;
  /// Bernoulli draw with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Poisson draw with the given mean (Knuth for small, normal approx for large).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Derive an independent child generator (for per-satellite streams).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace cosmicdance
