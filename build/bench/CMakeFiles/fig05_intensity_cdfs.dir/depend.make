# Empty dependencies file for fig05_intensity_cdfs.
# This may be replaced when dependencies are built.
