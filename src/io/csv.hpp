// Minimal RFC-4180-style CSV reading and writing.
//
// The pipeline exchanges figure data and ingests archival exports as CSV;
// this implementation supports quoted fields containing commas, quotes and
// newlines, which is all the formats in play require.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cosmicdance::diag {
class ParseLog;
}  // namespace cosmicdance::diag

namespace cosmicdance::io {

using CsvRow = std::vector<std::string>;

/// Parse a single CSV record from `line` (no embedded newlines).
/// Throws ParseError on unbalanced quotes, a quote opening mid-field, or
/// text following a closing quote (RFC 4180).
[[nodiscard]] CsvRow parse_csv_line(std::string_view line);

/// Read all records from in-memory text — the zero-copy core; lines are
/// scanned as views of `text`.  Handles quoted fields spanning lines.
/// With a ParseLog, record outcomes are counted under stage "csv" and a
/// tolerant policy quarantines malformed records (by their first line
/// number in `source`) instead of throwing.
[[nodiscard]] std::vector<CsvRow> read_csv(std::string_view text,
                                           diag::ParseLog* log = nullptr,
                                           const std::string& source = "<text>");

/// Read all records from a stream (slurped, then parsed by the view core).
[[nodiscard]] std::vector<CsvRow> read_csv(std::istream& in,
                                           diag::ParseLog* log = nullptr,
                                           const std::string& source = "<stream>");

/// Read all records from a file (mmap-backed when available).  Throws
/// IoError when unreadable.
[[nodiscard]] std::vector<CsvRow> read_csv_file(const std::string& path,
                                                diag::ParseLog* log = nullptr);

/// Escape a field per RFC 4180 (quote when it contains , " CR or newline;
/// an unquoted trailing CR would be eaten as CRLF normalization on read).
[[nodiscard]] std::string escape_csv_field(const std::string& field);

/// Serialise one record (no trailing newline).
[[nodiscard]] std::string format_csv_row(const CsvRow& row);

/// Write records to a stream, one per line.
void write_csv(std::ostream& out, const std::vector<CsvRow>& rows);

/// Write records to a file.  Throws IoError when unwritable.
void write_csv_file(const std::string& path, const std::vector<CsvRow>& rows);

}  // namespace cosmicdance::io
