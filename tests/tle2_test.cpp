// TleCatalog ingestion edge cases the first tle_test leaves uncovered:
// truncated lines, corrupted checksums mid-catalog, duplicate NORAD IDs
// (same satellite re-listed, and exact-epoch duplicates), CRLF line endings,
// and a property-style format -> parse -> format round trip over randomly
// generated element sets.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "timeutil/datetime.hpp"
#include "tle/catalog.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::tle {
namespace {

// The canonical ISS TLE (checksums valid), reused as a splice donor.
const char* kIssLine1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
const char* kIssLine2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

/// A valid record with controllable catalog number and epoch offset.
Tle make_tle(int catalog_number, double epoch_offset_days = 0.0) {
  Tle tle;
  tle.catalog_number = catalog_number;
  tle.international_designator = "20001A";
  tle.epoch_jd =
      timeutil::to_julian(timeutil::make_datetime(2022, 3, 1)) +
      epoch_offset_days;
  tle.bstar = 1.4e-4;
  tle.inclination_deg = 53.05;
  tle.raan_deg = 120.5;
  tle.eccentricity = 0.0002;
  tle.arg_perigee_deg = 90.0;
  tle.mean_anomaly_deg = 45.0;
  tle.mean_motion_revday = 15.05;
  tle.element_set_number = 999;
  tle.rev_number = 12345;
  return tle;
}

std::string as_text(const Tle& tle) {
  const TleLines lines = format_tle(tle);
  return lines.line1 + "\n" + lines.line2 + "\n";
}

/// Re-stamp a line's checksum after a deliberate field mutation so the
/// corruption reaches the field parser instead of tripping the checksum.
std::string restamp(std::string line) {
  line[68] = static_cast<char>('0' + checksum(line.substr(0, 68)));
  return line;
}

// ---- field-level numeric validation ---------------------------------------

TEST(TleFieldValidation, NonDigitEccentricityRejectedEvenWithValidChecksum) {
  // Eccentricity is an assumed-decimal digit field (line 2, cols 27-33); a
  // stray letter must be a parse error, never strtod'ing to a prefix value.
  std::string line2 = kIssLine2;
  line2.replace(26, 7, "00a6703");
  line2 = restamp(line2);
  try {
    const Tle parsed = parse_tle(kIssLine1, line2);
    FAIL() << "letter inside eccentricity parsed as " << parsed.eccentricity;
  } catch (const ParseError& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kNumeric);
  }
}

TEST(TleFieldValidation, SpacePaddedEccentricityRejected) {
  std::string line2 = kIssLine2;
  line2.replace(26, 7, " 006703");
  line2 = restamp(line2);
  EXPECT_THROW(parse_tle(kIssLine1, line2), ParseError);
}

TEST(TleFieldValidation, NonDigitBstarMantissaRejectedEvenWithValidChecksum) {
  // B* is an exponent field (line 1, cols 54-61): " 12a45-3" must not
  // strtod to 12e-3 with the tail ignored.
  std::string line1 = kIssLine1;
  line1.replace(53, 8, " 12a45-3");
  line1 = restamp(line1);
  try {
    const Tle parsed = parse_tle(line1, kIssLine2);
    FAIL() << "letter inside B* mantissa parsed as " << parsed.bstar;
  } catch (const ParseError& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kNumeric);
  }
}

TEST(TleFieldValidation, ChecksumErrorsCarryTheChecksumCategory) {
  std::string line1 = kIssLine1;
  line1[68] = line1[68] == '0' ? '1' : '0';
  try {
    const Tle parsed = parse_tle(line1, kIssLine2);
    FAIL() << "corrupted checksum accepted for " << parsed.catalog_number;
  } catch (const ParseError& error) {
    EXPECT_EQ(error.category(), ErrorCategory::kChecksum);
  }
}

// ---- truncated input ------------------------------------------------------

TEST(TleCatalogEdge, TruncatedLine1IsNotSilentlyAccepted) {
  // A line 1 cut short no longer looks like a TLE line, so the following
  // line 2 is an orphan — that must be a hard error, not a skipped record.
  TleCatalog catalog;
  const std::string truncated = std::string(kIssLine1).substr(0, 40);
  EXPECT_THROW(catalog.add_from_text(truncated + "\n" + kIssLine2 + "\n"),
               ParseError);
  EXPECT_TRUE(catalog.empty());
}

TEST(TleCatalogEdge, TruncatedLine2RejectedByLength) {
  TleCatalog catalog;
  const std::string truncated = std::string(kIssLine2).substr(0, 68);
  // Truncated line 2 stops looking like a TLE line; the dangling line 1
  // is then detected at end of input.
  EXPECT_THROW(catalog.add_from_text(std::string(kIssLine1) + "\n" + truncated),
               ParseError);
}

TEST(TleCatalogEdge, DanglingLine1AtEofThrows) {
  TleCatalog catalog;
  EXPECT_THROW(catalog.add_from_text(std::string(kIssLine1) + "\n"), ParseError);
}

TEST(TleCatalogEdge, EmptyAndWhitespaceOnlyInputAddsNothing) {
  TleCatalog catalog;
  EXPECT_EQ(catalog.add_from_text(""), 0u);
  EXPECT_EQ(catalog.add_from_text("\n\n\r\n"), 0u);
  EXPECT_TRUE(catalog.empty());
}

// ---- checksum corruption --------------------------------------------------

TEST(TleCatalogEdge, BadChecksumMidCatalogThrowsWithoutCorruptingState) {
  const std::string good = as_text(make_tle(10001));
  std::string corrupted = as_text(make_tle(10002, 1.0));
  // Flip the line-1 checksum digit (last char before the newline).
  std::string::size_type checksum_pos = corrupted.find('\n') - 1;
  corrupted[checksum_pos] = corrupted[checksum_pos] == '0' ? '1' : '0';

  TleCatalog catalog;
  EXPECT_THROW(catalog.add_from_text(good + corrupted + good), ParseError);
  // Records before the corruption were added; the bad one was not.
  EXPECT_EQ(catalog.satellite_count(), 1u);
  EXPECT_EQ(catalog.history(10001).size(), 1u);
  EXPECT_TRUE(catalog.history(10002).empty());
}

TEST(TleCatalogEdge, EveryDigitCorruptionIsCaught) {
  // Property: corrupting any single digit of either line to a different
  // digit must break the checksum or the strict column parse.
  const TleLines lines = format_tle(make_tle(20002, 2.5));
  for (const std::string& base : {lines.line1, lines.line2}) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(base[i]))) continue;
      std::string corrupted = base;
      corrupted[i] = base[i] == '9' ? '8' : static_cast<char>(base[i] + 1);
      const bool is_line1 = base[0] == '1';
      const std::string& l1 = is_line1 ? corrupted : lines.line1;
      const std::string& l2 = is_line1 ? lines.line2 : corrupted;
      bool rejected = false;
      try {
        const Tle parsed = parse_tle(l1, l2);
        // Corrupting a checksum-neutral pair is impossible for a single
        // digit flip: the checksum must have caught it if fields survived.
        static_cast<void>(parsed);
      } catch (const ParseError&) {
        rejected = true;
      } catch (const ValidationError&) {
        rejected = true;  // e.g. inclination pushed outside [0,180]
      }
      EXPECT_TRUE(rejected) << "undetected corruption at column " << i
                            << " of line '" << base << "'";
    }
  }
}

// ---- duplicate NORAD IDs --------------------------------------------------

TEST(TleCatalogEdge, DuplicateNoradIdMergesIntoOneHistory) {
  TleCatalog catalog;
  // Same satellite listed twice, interleaved with another satellite.
  const std::string text = as_text(make_tle(30001, 0.0)) +
                           as_text(make_tle(30002, 0.0)) +
                           as_text(make_tle(30001, 3.0));
  EXPECT_EQ(catalog.add_from_text(text), 3u);
  EXPECT_EQ(catalog.satellite_count(), 2u);
  ASSERT_EQ(catalog.history(30001).size(), 2u);
  // History is epoch-sorted regardless of input order.
  EXPECT_LT(catalog.history(30001)[0].epoch_jd,
            catalog.history(30001)[1].epoch_jd);
}

TEST(TleCatalogEdge, ExactEpochDuplicateDropped) {
  TleCatalog catalog;
  const std::string record = as_text(make_tle(30003, 1.0));
  EXPECT_EQ(catalog.add_from_text(record + record), 1u);
  EXPECT_EQ(catalog.record_count(), 1u);
  EXPECT_EQ(catalog.history(30003).size(), 1u);
}

TEST(TleCatalogEdge, NearDuplicateEpochWithinOneSecondDropped) {
  TleCatalog catalog;
  EXPECT_TRUE(catalog.add(make_tle(30004, 0.0)));
  EXPECT_FALSE(catalog.add(make_tle(30004, 0.5 / 86400.0)));  // +0.5 s
  EXPECT_TRUE(catalog.add(make_tle(30004, 2.0 / 86400.0)));   // +2 s
  EXPECT_EQ(catalog.history(30004).size(), 2u);
}

// ---- CRLF line endings ----------------------------------------------------

TEST(TleCatalogEdge, CrlfInputParsesIdenticallyToLf) {
  const std::string lf = as_text(make_tle(40001, 0.0)) +
                         as_text(make_tle(40002, 1.0));
  std::string crlf;
  for (const char c : lf) {
    if (c == '\n') crlf += "\r\n";
    else crlf.push_back(c);
  }

  TleCatalog from_lf;
  TleCatalog from_crlf;
  EXPECT_EQ(from_lf.add_from_text(lf), 2u);
  EXPECT_EQ(from_crlf.add_from_text(crlf), 2u);
  EXPECT_EQ(from_lf.to_text(), from_crlf.to_text());
}

// ---- property-style round trip --------------------------------------------

TEST(TleCatalogEdge, RandomElementSetsRoundTripBitExactly) {
  // format -> parse quantises to the column widths; a second
  // format(parse(...)) pass must then be byte-identical (the module's
  // "symmetric parse/format" contract), and the catalog must survive its
  // own to_text().
  Rng rng(20240511);
  TleCatalog catalog;
  const double base_jd = timeutil::to_julian(timeutil::make_datetime(2021, 1, 1));
  for (int i = 0; i < 200; ++i) {
    Tle tle;
    tle.catalog_number = static_cast<int>(rng.uniform_int(1, 99999));
    tle.international_designator = "21" +
        std::to_string(100 + static_cast<int>(rng.uniform_int(0, 899))) + "A";
    tle.epoch_jd = base_jd + rng.uniform(0.0, 1200.0);
    tle.mean_motion_dot = rng.uniform(-1e-4, 1e-4);
    tle.bstar = rng.uniform(-1e-3, 1e-3);
    tle.inclination_deg = rng.uniform(0.0, 180.0);
    tle.raan_deg = rng.uniform(0.0, 360.0);
    tle.eccentricity = rng.uniform(0.0, 0.1);
    tle.arg_perigee_deg = rng.uniform(0.0, 360.0);
    tle.mean_anomaly_deg = rng.uniform(0.0, 360.0);
    tle.mean_motion_revday = rng.uniform(11.0, 16.5);
    tle.element_set_number = static_cast<int>(rng.uniform_int(0, 9999));
    tle.rev_number = static_cast<int>(rng.uniform_int(0, 99999));

    const TleLines first = format_tle(tle);
    const Tle parsed = parse_tle(first.line1, first.line2);
    const TleLines second = format_tle(parsed);
    ASSERT_EQ(first.line1, second.line1) << "record " << i;
    ASSERT_EQ(first.line2, second.line2) << "record " << i;

    // Quantisation error is bounded by the column widths.
    EXPECT_EQ(parsed.catalog_number, tle.catalog_number);
    EXPECT_NEAR(parsed.inclination_deg, tle.inclination_deg, 1e-4);
    EXPECT_NEAR(parsed.raan_deg, tle.raan_deg, 1e-4);
    EXPECT_NEAR(parsed.eccentricity, tle.eccentricity, 1e-7);
    EXPECT_NEAR(parsed.mean_motion_revday, tle.mean_motion_revday, 1e-8);
    EXPECT_NEAR(parsed.epoch_jd, tle.epoch_jd, 1e-7);

    catalog.add(parsed);
  }

  // Whole-catalog round trip: to_text -> add_from_text reproduces every
  // record (duplicate epochs aside, which the generator avoids w.h.p.).
  TleCatalog reloaded;
  EXPECT_EQ(reloaded.add_from_text(catalog.to_text()), catalog.record_count());
  EXPECT_EQ(reloaded.to_text(), catalog.to_text());
}

}  // namespace
}  // namespace cosmicdance::tle
