// cdlint's scan driver: the two-phase analysis over a source tree, shared
// by the CLI (cdlint.cpp) and the benchmark (bench/micro_cdlint.cpp).
//
// Phase 1 lexes every file and runs the per-file rules while distilling a
// serialized FileIndex per translation unit; the per-file work fans out
// over cosmicdance::exec::ordered_map (cdlint dogfoods the pool it lints).
// Phase 2 merges the indexes in sorted path order and judges the
// cross-file rules R9-R14.  Because the worklist is sorted, the merge is
// ordered, and findings are sorted by (file, line, rule, message), the
// output is byte-identical at any --threads value — the same determinism
// contract the analyzer enforces on the rest of the tree.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "index.hpp"
#include "rules.hpp"

namespace cdlint {

struct ScanOptions {
  std::string root = ".";
  std::vector<std::string> dirs{"src", "tools", "bench", "tests"};
  int threads = 0;  ///< exec convention: 0 = all hardware, 1 = exact serial
};

struct ScanResult {
  std::vector<Finding> findings;  ///< sorted; baseline not yet applied
  std::size_t files_scanned = 0;
  ProjectIndex index;             ///< merged phase-1 artifact (--dump-index)
  std::string error;              ///< non-empty on I/O or merge failure
};

/// Run both phases over `options.dirs` under `options.root`.
[[nodiscard]] ScanResult scan_tree(const ScanOptions& options);

}  // namespace cdlint
