// Constellation simulator: ground-truth orbital dynamics under storm-coupled
// drag, satellite lifecycle management, failure injection and TLE emission.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "simulation/launch_plan.hpp"
#include "simulation/satellite.hpp"
#include "simulation/tracking.hpp"
#include "spaceweather/dst_index.hpp"
#include "tle/catalog.hpp"

namespace cosmicdance::simulation {

/// What kind of storm-induced upset hit a satellite.
enum class FailureKind {
  kTemporaryOutage,   ///< loses station keeping, recovers after a while
  kPermanentDecay,    ///< loses station keeping permanently
  kStagingReentry,    ///< drag overwhelms a staging/raising satellite
};

/// A failure scripted to happen at an exact time (used to reproduce the
/// paper's cherry-picked Fig 3 satellites deterministically).
struct ForcedFailure {
  int catalog_number = 0;
  timeutil::DateTime at;
  FailureKind kind = FailureKind::kPermanentDecay;
  double outage_days = 20.0;  ///< for kTemporaryOutage
};

/// Storm-response / failure model parameters.
struct FailureModel {
  bool enabled = true;
  /// Hourly upset probability scales as
  ///   rate_scale * max(0, (-dst - onset_nt) / 100)^exponent
  double onset_nt = 70.0;
  double exponent = 1.5;
  double rate_scale = 8.0e-2;
  /// Saturation: hourly upset probability never exceeds this, so even a
  /// Carrington-scale driver upsets a fraction of the fleet per hour rather
  /// than everything at once.
  double max_hourly_probability = 0.03;
  /// Of upsets on operational satellites: fraction that decay permanently
  /// (the rest are temporary outages).  Calibrated so "significantly larger
  /// (10s of km)" shifts stay at the paper's ~1% tail.
  double permanent_fraction = 0.10;
  /// Temporary outage duration: exponential with this mean (days).
  double outage_mean_days = 18.0;
  /// After recovering from an outage, probability the operator re-targets
  /// the satellite a few km lower (shell reassignment after an anomaly) —
  /// the long-term orbital shifts the paper's Fig 4a tail hints at.
  double retarget_probability = 0.3;
  double retarget_min_km = 3.0;
  double retarget_max_km = 12.0;
  /// Staging/raising satellites: hourly reentry-spiral probability,
  /// staging_loss_scale * (-dst - onset)/100 per hour (the Feb 2022 loss
  /// mechanism; significant only for deep storms at low staging orbits).
  double staging_loss_scale = 0.015;
  double staging_loss_onset_nt = 85.0;
  /// Operator mitigation (Starlink's May-2024 posture): scales all upset
  /// probabilities down and ducks the satellite during extreme storms.
  bool proactive_response = false;
  double proactive_scale = 0.01;
};

/// One failure that actually happened during a run.
struct FailureRecord {
  int catalog_number = 0;
  double jd = 0.0;
  FailureKind kind = FailureKind::kTemporaryOutage;
};

/// Daily ground-truth sample kept for validation and for Fig 3/Fig 9-style
/// truth comparisons.
struct TruthSample {
  double jd = 0.0;
  double altitude_km = 0.0;
  SatelliteMode mode = SatelliteMode::kOperational;
  double density_ratio = 1.0;
};

struct ConstellationConfig {
  std::uint64_t seed = 1;
  timeutil::DateTime start{2019, 11, 11, 0, 0, 0.0};
  timeutil::DateTime end{2024, 5, 7, 0, 0, 0.0};
  double step_hours = 1.0;

  /// Hourly Dst series driving the storm response (non-owning; may be null
  /// for a permanently quiet run).
  const spaceweather::DstIndex* dst = nullptr;

  std::vector<LaunchBatch> launches;
  int first_catalog_number = 44713;  ///< Starlink L1's real range starts here

  // Station keeping / lifecycle.
  double deadband_km = 1.0;
  double boost_km_per_day = 1.5;
  /// Operational satellites occasionally manoeuvre (phasing, conjunction
  /// avoidance): small altitude adjustments at this daily probability.
  double maneuver_probability_per_day = 0.03;
  double maneuver_sigma_km = 0.6;
  double raising_km_per_day = 2.0;
  double deorbit_km_per_day = 3.0;
  double lifetime_years = 5.0;
  double reentry_altitude_km = 200.0;

  FailureModel failures;
  std::vector<ForcedFailure> forced_failures;

  TrackingConfig tracking;
  /// Keep a daily ground-truth sample per satellite (costs memory).
  bool record_truth = false;
};

/// Result of a full run.
struct SimulationResult {
  tle::TleCatalog catalog;                ///< everything the trackers saw
  std::map<int, std::vector<TruthSample>> truth;  ///< if record_truth
  std::vector<FailureRecord> failures;
  int launched = 0;
  int reentered = 0;
  /// Satellites still tracked (not reentered) at the end.
  int tracked_at_end = 0;
};

/// Runs the scenario hour by hour.  Deterministic for a given config.
class ConstellationSimulator {
 public:
  explicit ConstellationSimulator(ConstellationConfig config);

  /// Run from start to end and return the observed catalog + bookkeeping.
  [[nodiscard]] SimulationResult run();

 private:
  void launch_due_batches(double jd, SimulationResult& result);
  void step_satellite(SatelliteState& satellite, double jd, double dt_hours,
                      double dst_nt, SimulationResult& result, Rng& satellite_rng);
  void apply_forced_failures(double jd, double dt_hours, SimulationResult& result);
  [[nodiscard]] double density_ratio(const SatelliteState& satellite,
                                     double jd) const noexcept;

  ConstellationConfig config_;
  Rng rng_;
  std::vector<SatelliteState> satellites_;
  std::vector<Rng> satellite_rngs_;
  std::vector<double> next_observation_jd_;
  std::size_t next_launch_ = 0;
  int next_catalog_ = 0;
};

}  // namespace cosmicdance::simulation
