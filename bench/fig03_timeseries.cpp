// Fig 3: time series of geomagnetic intensity plus the atmospheric drag and
// altitude of the three cherry-picked Starlink satellites (#44943, #45400,
// #45766), Jan 2023 - May 2024.
//
// Paper storylines to reproduce:
//  * 2023-03-24 moderate storm -> #45766 drag spike + decay onset,
//    #45400 decay onset with a modest drag change;
//  * 2024-03-03 moderate storm -> #44943 drag spike then ~150 km drop
//    over the following weeks.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "io/table.hpp"
#include "timeutil/hour_axis.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst = bench::paper_dst();
  auto config = simulation::scenario::figure3(&dst);
  auto run = simulation::ConstellationSimulator(config).run();
  const core::CosmicDance pipeline(dst, std::move(run.catalog));

  const std::vector<int> satellites{44943, 45400, 45766};
  const auto timelines = core::track_timelines(pipeline.tracks(), satellites);

  io::print_heading(std::cout,
                    "Fig 3: Dst + drag (B*) + altitude, 14-day samples");
  io::TablePrinter table({"date", "minDst_nT", "44943_km", "44943_B*",
                          "45400_km", "45400_B*", "45766_km", "45766_B*"});

  const double start = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  const double end = timeutil::to_julian(timeutil::make_datetime(2024, 5, 7));
  for (double day = start; day < end; day += 14.0) {
    std::vector<std::string> row;
    row.push_back(timeutil::from_julian(day).to_string().substr(0, 10));
    // Most negative Dst over the 14-day bucket.
    double dst_min = 0.0;
    for (int h = 0; h < 14 * 24; ++h) {
      const auto hour = timeutil::hour_index_from_julian(day + h / 24.0);
      if (dst.covers(hour)) dst_min = std::min(dst_min, dst.at(hour));
    }
    row.push_back(io::TablePrinter::num(dst_min, 0));
    for (const auto& timeline : timelines) {
      // Last sample in the bucket (blank once the satellite reenters).
      double altitude = std::nan("");
      double bstar = std::nan("");
      for (std::size_t i = 0; i < timeline.epoch_jd.size(); ++i) {
        if (timeline.epoch_jd[i] >= day && timeline.epoch_jd[i] < day + 14.0) {
          altitude = timeline.altitude_km[i];
          bstar = timeline.bstar[i];
        }
      }
      row.push_back(std::isnan(altitude) ? "-" : io::TablePrinter::num(altitude, 1));
      row.push_back(std::isnan(bstar) ? "-"
                                      : io::TablePrinter::num(bstar * 1e4, 1) + "e-4");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  bench::note("shape check: all three hold ~550 km until their anchor storm;");
  bench::note("#45766/#45400 decay after 2023-03-24 (B* jumps for #45766,");
  bench::note("#45400's change is modest at first); #44943 falls ~150 km in");
  bench::note("the weeks after 2024-03-03.  '-' = reentered / no TLEs.");
  return 0;
}
