// Kp / ap bridge.
//
// NOAA's G-scale is formally defined on the planetary Kp index while the
// paper (and this library) measures Dst.  The two track each other well for
// storm-time conditions; this module carries the standard conversions so
// G-scale labels can be cross-checked against Kp-based products:
//   * Kp <-> ap: the official quasi-logarithmic table,
//   * Dst -> Kp: a piecewise-linear fit of the storm-time relationship,
//   * Kp -> NOAA G level.
#pragma once

#include <string>

namespace cosmicdance::spaceweather {

/// The 28 legal Kp values are thirds: 0.0, 0.33, 0.67, 1.0, ... 9.0.
/// Round an arbitrary value to the nearest legal Kp step, clamped to [0,9].
[[nodiscard]] double round_to_kp_step(double kp) noexcept;

/// Official Kp -> ap equivalent (table lookup on the rounded Kp step).
[[nodiscard]] double ap_from_kp(double kp);

/// Inverse lookup: the Kp step whose ap is nearest the given value.
[[nodiscard]] double kp_from_ap(double ap);

/// Storm-time Dst -> approximate Kp (piecewise-linear fit; quiet Dst maps
/// to low Kp, the Carrington regime saturates at Kp 9).
[[nodiscard]] double kp_from_dst(double dst_nt) noexcept;

/// NOAA G level from Kp: G0 (<5), G1 (5), G2 (6), G3 (7), G4 (8-8.67), G5 (9).
[[nodiscard]] int g_level_from_kp(double kp) noexcept;

/// "G0".."G5" label.
[[nodiscard]] std::string g_label(int g_level);

}  // namespace cosmicdance::spaceweather
