file(REMOVE_RECURSE
  "CMakeFiles/ext_shell_trespass.dir/ext_shell_trespass.cpp.o"
  "CMakeFiles/ext_shell_trespass.dir/ext_shell_trespass.cpp.o.d"
  "ext_shell_trespass"
  "ext_shell_trespass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_shell_trespass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
