# Empty compiler generated dependencies file for ext_shell_trespass.
# This may be replaced when dependencies are built.
