file(REMOVE_RECURSE
  "CMakeFiles/atmosphere_test.dir/atmosphere_test.cpp.o"
  "CMakeFiles/atmosphere_test.dir/atmosphere_test.cpp.o.d"
  "atmosphere_test"
  "atmosphere_test.pdb"
  "atmosphere_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmosphere_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
