
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/elements.cpp" "src/orbit/CMakeFiles/cd_orbit.dir/elements.cpp.o" "gcc" "src/orbit/CMakeFiles/cd_orbit.dir/elements.cpp.o.d"
  "/root/repo/src/orbit/frames.cpp" "src/orbit/CMakeFiles/cd_orbit.dir/frames.cpp.o" "gcc" "src/orbit/CMakeFiles/cd_orbit.dir/frames.cpp.o.d"
  "/root/repo/src/orbit/kepler.cpp" "src/orbit/CMakeFiles/cd_orbit.dir/kepler.cpp.o" "gcc" "src/orbit/CMakeFiles/cd_orbit.dir/kepler.cpp.o.d"
  "/root/repo/src/orbit/state.cpp" "src/orbit/CMakeFiles/cd_orbit.dir/state.cpp.o" "gcc" "src/orbit/CMakeFiles/cd_orbit.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeutil/CMakeFiles/cd_timeutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
