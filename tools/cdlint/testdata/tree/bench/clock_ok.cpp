// cdlint corpus: negative control.  bench/ may read wall clocks: timing is
// what benches are for, and their output never feeds measurements.
#include <chrono>
#include <ctime>

double seconds_since(long then) {
  const auto now = std::chrono::system_clock::now();
  (void)now;
  long stamp = time(nullptr);
  return static_cast<double>(stamp - then);
}
