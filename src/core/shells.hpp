// Shell-trespass analysis (paper §5 "trespassing multiple adjacent shells",
// §6 Kessler-syndrome future work).
//
// Mega-constellations stack shells ~5 km apart; a satellite that drifts out
// of its own shell transits its neighbours' altitude bands, raising the
// conjunction risk there.  These analyses quantify that exposure from the
// cleaned tracks alone.
#pragma once

#include <span>
#include <vector>

#include "core/track.hpp"

namespace cosmicdance::core {

struct ShellConfig {
  /// Shell centre altitudes, km (Starlink Gen1-like by default).
  std::vector<double> shell_altitudes_km{540.0, 550.0, 560.0, 570.0};
  /// A satellite is "inside" a shell within this half-width of its centre.
  double half_width_km = 2.5;
};

/// One satellite entering a shell band that is not its home shell.
struct TrespassEvent {
  int catalog_number = 0;
  double entry_jd = 0.0;
  double home_shell_km = 0.0;     ///< nearest shell to the track's median
  double crossed_shell_km = 0.0;  ///< the foreign shell it entered
};

/// Nearest configured shell to an altitude (km).  Throws ValidationError
/// when no shells are configured.
[[nodiscard]] double nearest_shell_km(double altitude_km, const ShellConfig& config);

/// Every first entry of a satellite into a foreign shell band, in time
/// order per satellite (re-entries into the same band after leaving count
/// again: each is a fresh conjunction exposure).
[[nodiscard]] std::vector<TrespassEvent> shell_trespasses(
    std::span<const SatelliteTrack> tracks, const ShellConfig& config = {});

/// Conjunction-exposure proxy: total satellite-days spent inside foreign
/// shell bands, estimated from consecutive-sample dwell.
[[nodiscard]] double foreign_shell_dwell_days(std::span<const SatelliteTrack> tracks,
                                              const ShellConfig& config = {});

/// Trespass events restricted to a time window (for storm vs quiet
/// comparisons).
[[nodiscard]] std::vector<TrespassEvent> shell_trespasses_between(
    std::span<const SatelliteTrack> tracks, double jd_lo, double jd_hi,
    const ShellConfig& config = {});

}  // namespace cosmicdance::core
