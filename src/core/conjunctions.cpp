#include "core/conjunctions.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "orbit/state.hpp"
#include "sgp4/sgp4.hpp"

namespace cosmicdance::core {
namespace {

double separation_km(const sgp4::Sgp4Propagator& pa,
                     const sgp4::Sgp4Propagator& pb, double jd) {
  return orbit::norm(
      orbit::sub(pa.propagate_jd(jd).position_km, pb.propagate_jd(jd).position_km));
}

}  // namespace

std::optional<Conjunction> closest_approach(const tle::Tle& a, const tle::Tle& b,
                                            double jd_start, double days,
                                            const ConjunctionConfig& config) {
  if (days <= 0.0 || config.coarse_step_seconds <= 0.0) {
    throw ValidationError("conjunction window and step must be positive");
  }
  try {
    const sgp4::Sgp4Propagator pa(a);
    const sgp4::Sgp4Propagator pb(b);

    const double step_days = config.coarse_step_seconds / units::kSecondsPerDay;
    double best_jd = jd_start;
    double best_distance = 1e30;
    for (double jd = jd_start; jd <= jd_start + days; jd += step_days) {
      const double d = separation_km(pa, pb, jd);
      if (d < best_distance) {
        best_distance = d;
        best_jd = jd;
      }
    }

    // Ternary-search refinement inside the bracketing steps (the separation
    // is locally unimodal around a flyby).
    double lo = best_jd - step_days;
    double hi = best_jd + step_days;
    for (int i = 0; i < 60; ++i) {
      const double m1 = lo + (hi - lo) / 3.0;
      const double m2 = hi - (hi - lo) / 3.0;
      if (separation_km(pa, pb, m1) < separation_km(pa, pb, m2)) {
        hi = m2;
      } else {
        lo = m1;
      }
    }
    const double refined_jd = (lo + hi) / 2.0;
    const double refined_distance = separation_km(pa, pb, refined_jd);

    Conjunction conjunction;
    conjunction.catalog_a = a.catalog_number;
    conjunction.catalog_b = b.catalog_number;
    if (refined_distance < best_distance) {
      conjunction.jd = refined_jd;
      conjunction.distance_km = refined_distance;
    } else {
      conjunction.jd = best_jd;
      conjunction.distance_km = best_distance;
    }
    return conjunction;
  } catch (const PropagationError&) {
    return std::nullopt;
  }
}

std::vector<Conjunction> screen_against(const tle::Tle& object,
                                        std::span<const tle::Tle> others,
                                        double jd_start, double days,
                                        const ConjunctionConfig& config) {
  std::vector<Conjunction> hits;
  for (const tle::Tle& other : others) {
    if (other.catalog_number == object.catalog_number) continue;
    const auto approach = closest_approach(object, other, jd_start, days, config);
    if (approach.has_value() && approach->distance_km <= config.threshold_km) {
      hits.push_back(*approach);
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const Conjunction& a, const Conjunction& b) {
              return a.distance_km < b.distance_km;
            });
  return hits;
}

}  // namespace cosmicdance::core
