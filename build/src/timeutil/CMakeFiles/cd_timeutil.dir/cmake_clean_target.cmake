file(REMOVE_RECURSE
  "libcd_timeutil.a"
)
