#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "io/parse.hpp"

namespace cosmicdance::serve {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool eat_word(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.text);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return eat_word("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return eat_word("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return eat_word("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned long cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
            if (!eat('\\') || !eat('u')) return false;
            unsigned long low = 0;
            if (!parse_hex4(low) || low < 0xDC00 || low > 0xDFFF) return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // unpaired low surrogate
          }
          append_utf8(out, cp);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_hex4(unsigned long& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return false;
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned long>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned long>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned long>(c - 'A' + 10);
      else return false;
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned long cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  /// Validates the JSON number grammar but keeps the raw token.
  bool parse_number(JsonValue& out) {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digits()) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits()) return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.text = std::string(text_.substr(begin, pos_ - begin));
    return true;
  }

  bool digits() {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    return pos_ > begin;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& member : members) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::optional<double> JsonValue::number() const {
  if (kind != Kind::kNumber) return std::nullopt;
  return io::parse_double(text);
}

std::optional<long> JsonValue::integer() const {
  if (kind != Kind::kNumber) return std::nullopt;
  return io::parse_long(text);
}

std::optional<JsonValue> parse_json(std::string_view text) {
  return Parser(text).run();
}

std::string escape_json(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace cosmicdance::serve
