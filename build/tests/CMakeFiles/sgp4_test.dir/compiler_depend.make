# Empty compiler generated dependencies file for sgp4_test.
# This may be replaced when dependencies are built.
