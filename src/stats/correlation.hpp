// Correlation coefficients for the intensity-vs-impact analyses.
#pragma once

#include <span>

namespace cosmicdance::stats {

/// Pearson product-moment correlation of two equal-length samples.
/// Throws ValidationError for mismatched/too-short samples or zero variance.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson over average ranks; tie-aware).
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace cosmicdance::stats
