// SGP4/SDP4 orbit propagator (Vallado's reference algorithm, WGS-72).
//
// This is the standard analytical model TLEs are fitted against: the
// near-earth SGP4 theory (J2/J3/J4 secular + periodic terms and the B* drag
// model) plus the SDP4 deep-space extension (lunar/solar periodics and
// 12h/24h resonance handling) selected automatically for periods >= 225 min.
// Output states are in the TEME frame, kilometres and km/s.
#pragma once

#include <string>

#include "orbit/constants.hpp"
#include "orbit/state.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::sgp4 {

/// Propagation failure modes, mirroring the reference implementation's
/// error codes.
enum class Sgp4Status {
  kOk = 0,
  kEccentricityOutOfRange = 1,  ///< mean eccentricity outside [0, 1)
  kMeanMotionNonPositive = 2,
  kPerturbedEccentricityOutOfRange = 3,
  kSemiLatusRectumNegative = 4,
  kDecayed = 6,  ///< satellite radius dropped below Earth's surface
};

/// Human-readable description of a status code.
[[nodiscard]] std::string to_string(Sgp4Status status);

/// One initialised propagator per TLE.  Construction runs the full
/// sgp4init element recovery; propagation is then cheap and thread-safe
/// for distinct instances (the deep-space resonance integrator keeps a
/// restartable cache, so a single instance must not be shared across
/// threads without synchronisation).
class Sgp4Propagator {
 public:
  /// Throws ValidationError for bad elements and PropagationError when the
  /// element set cannot be initialised (e.g. epoch elements below ground).
  explicit Sgp4Propagator(const tle::Tle& tle,
                          const orbit::GravityModel& gravity = orbit::wgs72());

  /// Propagate `tsince_minutes` minutes from the TLE epoch.  Throws
  /// PropagationError (with the status in the message) on failure.
  [[nodiscard]] orbit::StateVector propagate_minutes(double tsince_minutes) const;

  /// Propagate to an absolute UTC Julian date.
  [[nodiscard]] orbit::StateVector propagate_jd(double jd) const;

  /// Non-throwing variant; returns the status and fills `out` on success.
  [[nodiscard]] Sgp4Status try_propagate_minutes(double tsince_minutes,
                                                 orbit::StateVector& out) const noexcept;

  [[nodiscard]] double epoch_jd() const noexcept { return epoch_jd_; }
  [[nodiscard]] int catalog_number() const noexcept { return catalog_number_; }
  /// True when the SDP4 deep-space path is active (period >= 225 min).
  [[nodiscard]] bool deep_space() const noexcept { return method_ == 'd'; }

  /// Brouwer mean semi-major axis recovered from the Kozai mean motion at
  /// epoch (km) — the paper's altitude proxy uses exactly this recovery.
  [[nodiscard]] double recovered_semi_major_axis_km() const noexcept;
  /// recovered_semi_major_axis_km() minus Earth's equatorial radius.
  [[nodiscard]] double recovered_altitude_km() const noexcept;

 private:
  void init(const tle::Tle& tle);
  [[nodiscard]] Sgp4Status run_sgp4(double tsince, orbit::StateVector& out) const noexcept;
  void dscom(double epoch1950, double ep, double argpp, double tc, double inclp,
             double nodep, double np);
  void dpper(double t, bool init_phase, double& ep, double& inclp, double& nodep,
             double& argpp, double& mp) const noexcept;
  void dsinit(double tc, double xpidot, double eccsq, double& em, double& argpm,
              double& inclm, double& mm, double& nm, double& nodem);
  void dspace(double t, double tc, double& em, double& argpm, double& inclm,
              double& mm, double& nodem, double& nm) const noexcept;

  orbit::GravityModel gravity_{};
  double epoch_jd_ = 0.0;
  double epoch1950_ = 0.0;  ///< days since 1949 Dec 31 00:00 UT
  int catalog_number_ = 0;
  char method_ = 'n';  ///< 'n' near earth, 'd' deep space
  int isimp_ = 0;

  // Mean elements at epoch (radians, rad/min).
  double bstar_ = 0.0, ecco_ = 0.0, argpo_ = 0.0, inclo_ = 0.0, mo_ = 0.0,
         no_ = 0.0, nodeo_ = 0.0;

  // Near-earth constants.
  double aycof_ = 0.0, con41_ = 0.0, cc1_ = 0.0, cc4_ = 0.0, cc5_ = 0.0,
         d2_ = 0.0, d3_ = 0.0, d4_ = 0.0, delmo_ = 0.0, eta_ = 0.0,
         argpdot_ = 0.0, omgcof_ = 0.0, sinmao_ = 0.0, t2cof_ = 0.0,
         t3cof_ = 0.0, t4cof_ = 0.0, t5cof_ = 0.0, x1mth2_ = 0.0,
         x7thm1_ = 0.0, mdot_ = 0.0, nodedot_ = 0.0, xlcof_ = 0.0,
         xmcof_ = 0.0, nodecf_ = 0.0;

  // Deep-space constants.
  int irez_ = 0;
  double d2201_ = 0.0, d2211_ = 0.0, d3210_ = 0.0, d3222_ = 0.0, d4410_ = 0.0,
         d4422_ = 0.0, d5220_ = 0.0, d5232_ = 0.0, d5421_ = 0.0, d5433_ = 0.0,
         dedt_ = 0.0, del1_ = 0.0, del2_ = 0.0, del3_ = 0.0, didt_ = 0.0,
         dmdt_ = 0.0, dnodt_ = 0.0, domdt_ = 0.0, e3_ = 0.0, ee2_ = 0.0,
         peo_ = 0.0, pgho_ = 0.0, pho_ = 0.0, pinco_ = 0.0, plo_ = 0.0,
         se2_ = 0.0, se3_ = 0.0, sgh2_ = 0.0, sgh3_ = 0.0, sgh4_ = 0.0,
         sh2_ = 0.0, sh3_ = 0.0, si2_ = 0.0, si3_ = 0.0, sl2_ = 0.0,
         sl3_ = 0.0, sl4_ = 0.0, gsto_ = 0.0, xfact_ = 0.0, xgh2_ = 0.0,
         xgh3_ = 0.0, xgh4_ = 0.0, xh2_ = 0.0, xh3_ = 0.0, xi2_ = 0.0,
         xi3_ = 0.0, xl2_ = 0.0, xl3_ = 0.0, xl4_ = 0.0, xlamo_ = 0.0,
         zmol_ = 0.0, zmos_ = 0.0;

  // dscom scratch shared between dscom -> dpper/dsinit during init.
  double snodm_ = 0.0, cnodm_ = 0.0, sinim_ = 0.0, cosim_ = 0.0, sinomm_ = 0.0,
         cosomm_ = 0.0, day_ = 0.0, emsq_ = 0.0, gam_ = 0.0, rtemsq_ = 0.0,
         s1_ = 0.0, s2_ = 0.0, s3_ = 0.0, s4_ = 0.0, s5_ = 0.0, s6_ = 0.0,
         s7_ = 0.0, ss1_ = 0.0, ss2_ = 0.0, ss3_ = 0.0, ss4_ = 0.0, ss5_ = 0.0,
         ss6_ = 0.0, ss7_ = 0.0, sz1_ = 0.0, sz2_ = 0.0, sz3_ = 0.0,
         sz11_ = 0.0, sz12_ = 0.0, sz13_ = 0.0, sz21_ = 0.0, sz22_ = 0.0,
         sz23_ = 0.0, sz31_ = 0.0, sz32_ = 0.0, sz33_ = 0.0, z1_ = 0.0,
         z2_ = 0.0, z3_ = 0.0, z11_ = 0.0, z12_ = 0.0, z13_ = 0.0, z21_ = 0.0,
         z22_ = 0.0, z23_ = 0.0, z31_ = 0.0, z32_ = 0.0, z33_ = 0.0;

  // Resonance integrator cache (restartable; see class comment).
  mutable double atime_ = 0.0, xli_ = 0.0, xni_ = 0.0;

  double recovered_a_earth_radii_ = 0.0;
};

}  // namespace cosmicdance::sgp4
