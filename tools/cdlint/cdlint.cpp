// cdlint — the CosmicDance project-invariant static-analysis pass.
//
//   cdlint [--root DIR] [--baseline FILE] [--json] [dir...]
//
// Walks `src/`, `tools/`, `bench/` and `tests/` under --root (default: the
// current directory), lints every .cpp/.hpp/.h against the project rules in
// rules.hpp, and prints findings one per line:
//
//   src/foo/bar.cpp:42: [rule-slug] message
//
// With --json, findings are emitted as a JSON object instead.  A baseline
// file (one `rule|path|normalized-line` entry per line, '#' comments) lets
// legacy findings be grandfathered while new ones fail; the committed
// baseline is empty and tier-1 pass 5 keeps it that way.
//
// Exit status: 0 no findings, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace cdlint {
namespace {

namespace fs = std::filesystem;

struct Options {
  std::string root = ".";
  std::string baseline;
  bool json = false;
  std::vector<std::string> dirs;
};

bool has_lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

/// Directories never scanned: self-test corpora (deliberate violations),
/// build trees, VCS internals.
bool skipped_directory(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == "testdata" || name == ".git" ||
         name.rfind("build", 0) == 0;
}

std::string normalize_whitespace(const std::string& line) {
  std::string out;
  bool in_space = true;  // also trims leading whitespace
  for (const char c : line) {
    if (c == ' ' || c == '\t') {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Baseline entries are consumable: each suppresses one matching finding.
using Baseline = std::multiset<std::string>;

Baseline load_baseline(const std::string& path) {
  Baseline baseline;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cdlint: cannot open baseline file: " << path << "\n";
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    baseline.insert(line.substr(first));
  }
  return baseline;
}

std::string baseline_key(const Finding& finding, const SourceFile& file) {
  const std::size_t idx = finding.line - 1;
  const std::string content =
      idx < file.raw_lines().size() ? file.raw_lines()[idx] : std::string();
  return finding.rule + "|" + finding.file + "|" +
         normalize_whitespace(content);
}

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* name) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "cdlint: " << name << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      options.root = value("--root");
    } else if (arg == "--baseline") {
      options.baseline = value("--baseline");
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: cdlint [--root DIR] [--baseline FILE] [--json] "
                   "[dir...]\n";
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cdlint: unknown option " << arg << "\n";
      std::exit(2);
    } else {
      options.dirs.push_back(arg);
    }
  }
  if (options.dirs.empty()) options.dirs = {"src", "tools", "bench", "tests"};
  return options;
}

int run(const Options& options) {
  const fs::path root(options.root);
  if (!fs::is_directory(root)) {
    std::cerr << "cdlint: --root is not a directory: " << options.root << "\n";
    return 2;
  }

  // Deterministic worklist: sorted repo-relative paths.
  std::vector<std::string> files;
  for (const std::string& dir : options.dirs) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    fs::recursive_directory_iterator it(base), end;
    while (it != end) {
      if (it->is_directory() && skipped_directory(it->path())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() &&
                 has_lintable_extension(it->path())) {
        files.push_back(fs::relative(it->path(), root).generic_string());
      }
      ++it;
    }
  }
  std::sort(files.begin(), files.end());

  Baseline baseline;
  if (!options.baseline.empty()) baseline = load_baseline(options.baseline);

  std::vector<Finding> findings;
  std::size_t baselined = 0;
  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) {
      std::cerr << "cdlint: cannot read " << rel << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const SourceFile source(rel, text.str());

    bool sibling_header = false;
    if (rel.size() > 4 && rel.compare(rel.size() - 4, 4, ".cpp") == 0) {
      const fs::path header =
          (root / rel).parent_path() /
          ((root / rel).stem().string() + ".hpp");
      sibling_header = fs::exists(header);
    }
    for (Finding& finding : run_rules(source, sibling_header)) {
      const auto entry = baseline.find(baseline_key(finding, source));
      if (entry != baseline.end()) {
        baseline.erase(entry);
        ++baselined;
        continue;
      }
      findings.push_back(std::move(finding));
    }
  }
  std::sort(findings.begin(), findings.end());

  if (options.json) {
    std::cout << "{\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      std::cout << (i == 0 ? "\n" : ",\n")
                << "    {\"file\": \"" << json_escape(f.file)
                << "\", \"line\": " << f.line << ", \"rule\": \""
                << json_escape(f.rule) << "\", \"message\": \""
                << json_escape(f.message) << "\"}";
    }
    std::cout << (findings.empty() ? "]" : "\n  ]") << ",\n"
              << "  \"files_scanned\": " << files.size() << ",\n"
              << "  \"baselined\": " << baselined << ",\n"
              << "  \"count\": " << findings.size() << "\n}\n";
  } else {
    for (const Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
    }
  }
  std::cerr << "cdlint: " << files.size() << " files, " << findings.size()
            << " finding(s)"
            << (baselined > 0
                    ? ", " + std::to_string(baselined) + " baselined"
                    : std::string())
            << "\n";
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace cdlint

int main(int argc, char** argv) {
  return cdlint::run(cdlint::parse_args(argc, argv));
}
