#!/usr/bin/env python3
"""Throughput diff between two bench telemetry records.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--tolerance FRAC]
                     [--fail-under PCT]

Both inputs are records written by bench::write_bench_record (see
bench/bench_common.hpp): {"bench": ..., "throughput": {name: rate}, ...}.
Every throughput key present in both files is compared; a relative drop
larger than --tolerance (default 0.30 — CI machines are noisy, and a
warn that cries wolf gets ignored) prints a WARN line.  Keys that appear
in only one file are reported as informational NOTE lines.

Exit status: by default 0 for any completed comparison, including one
with regressions — a warn-only trend surface.  With --fail-under PCT the
comparison becomes a gate: any key that dropped more than PCT percent
below its baseline prints a FAIL line and the script exits 1.  PCT is
deliberately separate from (and should be far looser than) --tolerance:
WARN catches drift a human should glance at, FAIL catches the
can't-be-noise collapses worth breaking the build over.
Usage or parse errors exit 2 so a broken wiring never masquerades as a
silent pass.
"""

import json
import sys


def fail_usage(message):
    print("bench_compare: " + message, file=sys.stderr)
    sys.exit(2)


def load_record(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError) as error:
        fail_usage("cannot read %s: %s" % (path, error))
    if not isinstance(record, dict) or not isinstance(
            record.get("throughput"), dict):
        fail_usage("%s is not a bench record (missing throughput object)" %
                   path)
    for name, value in record["throughput"].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            fail_usage("%s: throughput key %r is not a number (got %r)" %
                       (path, name, value))
    return record


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    tolerance = 0.30
    fail_under = None
    for option in (a for a in argv[1:] if a.startswith("--")):
        name, _, value = option.partition("=")
        if name == "--tolerance":
            try:
                tolerance = float(value)
            except ValueError:
                fail_usage("--tolerance needs a number, got %r" % value)
        elif name == "--fail-under":
            try:
                fail_under = float(value) / 100.0
            except ValueError:
                fail_usage("--fail-under needs a percentage, got %r" % value)
            if not 0.0 <= fail_under <= 1.0:
                fail_usage("--fail-under must be between 0 and 100")
        else:
            fail_usage("unknown option " + name)
    if len(args) != 2:
        fail_usage("expected BASELINE.json CURRENT.json")

    baseline = load_record(args[0])
    current = load_record(args[1])
    base_rates = baseline["throughput"]
    cur_rates = current["throughput"]

    bench = current.get("bench", "?")
    warned = 0
    failed = 0
    for name in sorted(set(base_rates) | set(cur_rates)):
        if name not in base_rates:
            print("NOTE  %s/%s: new key (%.6g), no baseline" %
                  (bench, name, cur_rates[name]))
            continue
        if name not in cur_rates:
            print("NOTE  %s/%s: key vanished (baseline %.6g)" %
                  (bench, name, base_rates[name]))
            continue
        base, cur = float(base_rates[name]), float(cur_rates[name])
        if base <= 0.0:
            continue
        change = (cur - base) / base
        if fail_under is not None and change < -fail_under:
            failed += 1
            print("FAIL  %s/%s: %.6g -> %.6g (%+.1f%%, fail-under %.0f%%)" %
                  (bench, name, base, cur, 100.0 * change,
                   100.0 * fail_under))
        elif change < -tolerance:
            warned += 1
            print("WARN  %s/%s: %.6g -> %.6g (%+.1f%%, tolerance %.0f%%)" %
                  (bench, name, base, cur, 100.0 * change, 100.0 * tolerance))
        else:
            print("ok    %s/%s: %.6g -> %.6g (%+.1f%%)" %
                  (bench, name, base, cur, 100.0 * change))
    if warned:
        print("bench_compare: %d throughput key(s) regressed beyond "
              "tolerance (warn-only, not failing the build)" % warned)
    if failed:
        print("bench_compare: %d throughput key(s) collapsed beyond the "
              "--fail-under gate" % failed)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
