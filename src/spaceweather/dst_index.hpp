// The hourly Disturbance storm time (Dst) index series.
//
// Dst measures the depression of Earth's equatorial magnetic field in
// nanoTesla; large negative excursions are geomagnetic storms.  The WDC
// Kyoto archive publishes it hourly, which fixes this type's shape: a dense
// array of hourly values anchored at an integral hour index.
#pragma once

#include <span>
#include <vector>

#include "timeutil/datetime.hpp"
#include "timeutil/hour_axis.hpp"

namespace cosmicdance::spaceweather {

/// Dense hourly Dst series.  Invariant: one value per hour, contiguous.
class DstIndex {
 public:
  DstIndex() = default;

  /// Build from a start hour and hourly values.
  DstIndex(timeutil::HourIndex start_hour, std::vector<double> values_nt);

  /// Convenience: anchor at a civil timestamp (floored to the hour).
  DstIndex(const timeutil::DateTime& start, std::vector<double> values_nt);

  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] timeutil::HourIndex start_hour() const noexcept { return start_; }
  /// One past the last hour.
  [[nodiscard]] timeutil::HourIndex end_hour() const noexcept {
    return start_ + static_cast<timeutil::HourIndex>(values_.size());
  }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// True when `hour` falls inside the series.
  [[nodiscard]] bool covers(timeutil::HourIndex hour) const noexcept;

  /// Dst value at an hour.  Throws ValidationError outside the series.
  [[nodiscard]] double at(timeutil::HourIndex hour) const;

  /// Dst value at a Julian date (the containing hour's value).
  [[nodiscard]] double at_julian(double jd) const;

  /// Append one more hour to the end of the series.
  void push_back(double value_nt) { values_.push_back(value_nt); }

  /// Sub-series covering [from, to) hours (clamped to the series range).
  [[nodiscard]] DstIndex slice(timeutil::HourIndex from, timeutil::HourIndex to) const;

  /// Civil time of the first sample.
  [[nodiscard]] timeutil::DateTime start_datetime() const;

  /// Intensity percentile: the p-th percentile of |negative excursion|
  /// (-Dst clamped at 0), in positive nT.  The paper's "99th-ptile
  /// intensity = -63 nT" corresponds to intensity_percentile(99) == 63.
  [[nodiscard]] double intensity_percentile(double p) const;

  /// The Dst threshold (negative nT) corresponding to an intensity
  /// percentile, i.e. -intensity_percentile(p).
  [[nodiscard]] double dst_threshold_at_percentile(double p) const;

  /// Minimum (most negative) Dst in the series.  Throws when empty.
  [[nodiscard]] double minimum() const;

 private:
  timeutil::HourIndex start_ = 0;
  std::vector<double> values_;
};

}  // namespace cosmicdance::spaceweather
