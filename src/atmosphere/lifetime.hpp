// Orbital-lifetime estimation (the in-orbit-lifetime literature the paper
// builds on): integrate the circular-orbit drag decay until reentry.
#pragma once

#include "spaceweather/dst_index.hpp"

namespace cosmicdance::atmosphere {

struct LifetimeConfig {
  double reentry_altitude_km = 120.0;  ///< integration stops here
  double max_days = 200.0 * 365.25;    ///< cap for effectively-stable orbits
  double step_hours = 6.0;             ///< integration step
  /// Optional storm driver: when set, density uses the Dst-coupled model
  /// along the timeline starting at `start_jd` (quiet beyond its coverage).
  const spaceweather::DstIndex* dst = nullptr;
  double start_jd = 0.0;
};

/// Days until a circular orbit at `altitude_km` with ballistic coefficient
/// `ballistic_m2_kg` (Cd*A/m) decays to the reentry altitude; returns
/// `config.max_days` when the orbit outlives the cap.  Throws
/// ValidationError for non-positive inputs.
[[nodiscard]] double decay_lifetime_days(double altitude_km, double ballistic_m2_kg,
                                         const LifetimeConfig& config = {});

}  // namespace cosmicdance::atmosphere
