// Aligned plain-text tables for bench and example output.
//
// Every figure bench prints its series as a readable table; this keeps the
// formatting (column sizing, numeric precision) in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cosmicdance::io {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a data row; it may have fewer cells than the header (padded).
  /// Throws ValidationError when it has more.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with two-space column gaps; numbers are right-aligned-ish by
  /// virtue of fixed formatting upstream.
  void print(std::ostream& out) const;

  /// Convenience: format a double with `precision` fractional digits.
  [[nodiscard]] static std::string num(double value, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section heading bench binaries use between figure panels.
void print_heading(std::ostream& out, const std::string& title);

}  // namespace cosmicdance::io
