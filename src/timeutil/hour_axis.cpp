#include "timeutil/hour_axis.hpp"

#include <cmath>

namespace cosmicdance::timeutil {

HourIndex hour_index_from_julian(double jd) noexcept {
  // Add a half-second of slack so that values like 13:59:59.9999 produced by
  // round-tripping through civil time land in the intended hour.
  return static_cast<HourIndex>(
      std::floor((jd - kJdEpoch2000) * 24.0 + 0.5 / 3600.0));
}

double julian_from_hour_index(HourIndex hour) noexcept {
  return kJdEpoch2000 + static_cast<double>(hour) / 24.0;
}

HourIndex hour_index_from_datetime(const DateTime& dt) {
  return hour_index_from_julian(to_julian(dt));
}

DateTime datetime_from_hour_index(HourIndex hour) {
  return from_julian(julian_from_hour_index(hour));
}

}  // namespace cosmicdance::timeutil
