// Streaming storm triggers (paper §6: LEOScope integration).
//
// The paper proposes feeding CosmicDance's solar-event signals to a
// measurement testbed as experiment triggers.  This is that interface: a
// stateful detector that consumes the hourly Dst stream sample by sample
// and emits onset/release transitions with hysteresis and debouncing, so a
// scheduler can start network measurements when a storm begins and stop
// them once it has clearly relaxed.
#pragma once

#include <optional>
#include <vector>

#include "spaceweather/dst_index.hpp"

namespace cosmicdance::core {

/// A trigger transition.
struct TriggerEvent {
  enum class Kind { kOnset, kRelease };
  Kind kind = Kind::kOnset;
  timeutil::HourIndex hour = 0;  ///< hour of the transition
  double dst_nt = 0.0;           ///< Dst at that hour
  /// Onsets: the deepest Dst across the debounce window that fired the
  /// trigger (not necessarily the firing hour's value).  Releases: the most
  /// negative Dst seen over the whole active interval.
  double peak_dst_nt = 0.0;
};

struct StormTriggerConfig {
  /// Fire when Dst drops to/below this...
  double onset_nt = -50.0;
  /// ...and release only after it has recovered above this (hysteresis;
  /// must be greater than onset_nt).
  double release_nt = -30.0;
  /// Hours Dst must stay at/below onset before firing (debounce; 1 fires
  /// immediately on the first qualifying hour).
  int min_active_hours = 1;
  /// Hours Dst must stay above release before releasing.
  int min_quiet_hours = 2;
};

/// Streaming hysteresis trigger over hourly Dst samples.
///
/// feed() must be called with strictly increasing consecutive hours; a gap
/// throws ValidationError (the archive is gap-free; a live feed should
/// interpolate or restart).
class StormTrigger {
 public:
  explicit StormTrigger(StormTriggerConfig config = {});

  /// Consume one hourly sample; returns a transition when one fires.
  std::optional<TriggerEvent> feed(timeutil::HourIndex hour, double dst_nt);

  [[nodiscard]] bool active() const noexcept { return active_; }
  /// Most negative Dst observed while active (0 when idle).
  [[nodiscard]] double peak_dst_nt() const noexcept { return peak_; }

  /// Replay a whole series and collect every transition.
  [[nodiscard]] std::vector<TriggerEvent> replay(const spaceweather::DstIndex& dst);

 private:
  StormTriggerConfig config_;
  bool active_ = false;
  bool started_ = false;
  timeutil::HourIndex last_hour_ = 0;
  int qualifying_hours_ = 0;
  int quiet_hours_ = 0;
  double peak_ = 0.0;
  /// Running minimum over the current onset-debounce streak.
  double pending_peak_ = 0.0;
};

}  // namespace cosmicdance::core
