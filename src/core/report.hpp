// Markdown summary report — the human-readable artefact of a pipeline run
// (what an operator or researcher would archive per analysis window).
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace cosmicdance::core {

struct ReportOptions {
  /// How many of the strongest storms to itemise.
  std::size_t top_storms = 10;
  /// Include the per-category drag table (costs a pass over every TLE).
  bool include_drag_by_category = true;
};

/// Render the full markdown report.
[[nodiscard]] std::string markdown_report(const CosmicDance& pipeline,
                                          const ReportOptions& options = {});

/// Render and write to a file.  Throws IoError on filesystem problems.
void write_markdown_report(const CosmicDance& pipeline, const std::string& path,
                           const ReportOptions& options = {});

}  // namespace cosmicdance::core
