# Empty dependencies file for fig08_historical_dst.
# This may be replaced when dependencies are built.
