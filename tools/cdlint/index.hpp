// cdlint's project symbol index: the phase-1 artifact the cross-file rules
// (R9-R14, rules.hpp) run over.
//
// Every concurrency bug this analyzer exists to catch was a *cross-file*
// interaction: the shared-propagator resonance race lived in a header's
// mutable member but raced at a call site two files away (PR 8), and the
// listener-fd race and torn `.tmp` writes crossed the server/service and
// snapshot/save boundaries (PR 7).  A per-file lexical rule cannot see any
// of those.  So phase 1 distils each SourceFile into a small, serializable
// FileIndex — declared mutexes and atomics, lock-acquisition nestings,
// blocking-call sites, thread spawns/joins/aliases, exec::parallel_for /
// ordered_map call sites with their lambda capture lists and body writes,
// obs counter registrations, relaxed-memory-order sites, floating-point
// accumulation hazards, and the reasoned allow() directives — and phase 2
// merges the per-file indexes (in sorted path order, so the merge is
// deterministic at any --threads value) into a ProjectIndex before judging.
//
// The index is text-serializable (one record per line, tab-separated, the
// whitespace-normalized raw source line last) both so `--dump-index` can
// expose it for debugging/tests and so the per-file artifacts produced by
// parallel scan workers merge through a plain, ordered concatenation.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace cdlint {

/// `std::mutex`-family member/local declaration.
struct MutexDecl {
  std::string name;
  std::size_t line = 0;
};

/// `std::atomic<...>` declaration; writes to these commute (the obs counter
/// contract), so R9 does not treat them as shared-mutable state.
struct AtomicDecl {
  std::string name;
  std::size_t line = 0;
};

/// `std::vector<std::thread>` declaration: emplace/push calls on this name
/// are thread spawns, possibly in another file of the same subsystem.
struct ThreadVectorDecl {
  std::string name;
  std::size_t line = 0;
};

/// A thread creation site.  `target` is the variable the thread lands in
/// ("<temporary>" when it is constructed and dropped in one expression).
struct ThreadSpawn {
  std::string target;
  std::size_t line = 0;
  std::string raw;
};

/// `container.emplace_back(...)` / `push_back(...)`: a spawn iff `container`
/// is a ThreadVectorDecl somewhere in the subsystem (resolved in phase 2).
struct PendingSpawn {
  std::string container;
  std::size_t line = 0;
  std::string raw;
};

/// `name.join()` / `name.detach()` — the reachable join/detach decision.
struct JoinSite {
  std::string target;
  std::size_t line = 0;
};

/// `to = std::move(from)`: joining `to` counts as joining `from`.
struct MoveAlias {
  std::string from;
  std::string to;
};

/// Range-for `for (T& var : range)`: joining `var` counts as joining `range`.
struct RangeAlias {
  std::string var;
  std::string range;
};

/// Guard/lock acquisition of `acquired` while `held` was already held in an
/// enclosing scope — one edge of the project-wide lock graph (R10).
struct LockEdge {
  std::string held;
  std::string acquired;
  std::size_t line = 0;
  std::string raw;
};

/// A blocking syscall/sleep issued while at least one mutex was held (R11
/// judges these for src/serve/).  `held` is the innermost held mutex.
struct BlockingCall {
  std::string callee;
  std::string held;
  std::size_t line = 0;
  std::string raw;
};

/// obs counter registry registration site (counter / sched_counter /
/// counter_or_null): the sanctioned relaxed-atomic idiom R14 contrasts with.
struct CounterReg {
  std::size_t line = 0;
  std::string raw;
};

/// Floating-point accumulation-order hazard: `kind` is "reduce" (unordered
/// std::reduce/transform_reduce), "float-accum" (float declaration), or
/// "fast-math" (pragma).  R13 judges these in bit-identical-grid code.
struct FpHazard {
  std::string kind;
  std::size_t line = 0;
  std::string raw;
};

/// `std::memory_order_relaxed` use; R14 confines these to src/obs/.
struct RelaxedSite {
  std::size_t line = 0;
  std::string raw;
};

/// One write inside a parallel lambda body: `name` possibly captured by
/// reference, `subscripted` when the access chain indexes per element
/// before mutating (the sanctioned disjoint-slot pattern).
struct ParallelWrite {
  std::string name;
  std::size_t line = 0;
  bool subscripted = false;
  std::string raw;
};

/// An `exec::parallel_for` / `exec::ordered_map` call site with its lambda
/// capture list, body-declared locals and body writes (R9).
struct ParallelSite {
  std::string callee;  ///< "parallel_for" | "ordered_map"
  std::size_t line = 0;
  bool capture_default_ref = false;  ///< [&] or [&, ...]
  std::set<std::string> ref_captures;    ///< explicit &name
  std::set<std::string> value_captures;  ///< explicit name / name = init
  std::set<std::string> locals;  ///< lambda params + body-declared names
  std::vector<ParallelWrite> writes;
};

/// A reasoned allow() directive, carried so phase 2 can honour
/// suppressions after the SourceFile is gone.
struct AllowRecord {
  std::size_t line = 0;  ///< target line the suppression applies to
  std::string rule;
};

/// Everything phase 2 needs to know about one translation unit.
struct FileIndex {
  std::string file;  ///< repo-relative path

  std::vector<MutexDecl> mutexes;
  std::vector<AtomicDecl> atomics;
  std::vector<ThreadVectorDecl> thread_vectors;
  std::vector<ThreadSpawn> spawns;
  std::vector<PendingSpawn> pending_spawns;
  std::vector<JoinSite> joins;
  std::vector<MoveAlias> move_aliases;
  std::vector<RangeAlias> range_aliases;
  std::vector<LockEdge> lock_edges;
  std::vector<BlockingCall> blocking_calls;
  std::vector<CounterReg> counter_regs;
  std::vector<FpHazard> fp_hazards;
  std::vector<RelaxedSite> relaxed_sites;
  std::vector<ParallelSite> parallel_sites;
  std::vector<AllowRecord> allows;

  /// True when a reasoned allow(rule) targets `line` in this file.
  [[nodiscard]] bool allowed(std::size_t line, const std::string& rule) const;

  /// One record per line, '\t'-separated, normalized raw text last.
  [[nodiscard]] std::string serialize() const;

  /// Inverse of serialize().  Returns false (with `error` set) on any
  /// malformed record — the merge must never guess.
  [[nodiscard]] static bool parse(const std::string& text, FileIndex& out,
                                  std::string& error);
};

/// Extract a FileIndex from a scanned file (phase 1, runs per worker).
[[nodiscard]] FileIndex build_index(const SourceFile& file);

/// The merged project-wide view phase 2 judges.  Files are kept in the
/// order they were merged; the scan driver merges in sorted path order so
/// the index — and therefore every finding — is thread-count independent.
struct ProjectIndex {
  std::vector<FileIndex> files;

  void merge(FileIndex index) { files.push_back(std::move(index)); }

  /// Concatenated per-file serializations (`--dump-index`).
  [[nodiscard]] std::string serialize() const;
};

/// The subsystem a path belongs to for cross-file identity: the first two
/// path components for nested trees ("src/serve", "tools/cdlint"), the
/// first alone otherwise ("tests", "bench").  Mutex and thread names are
/// only merged within one subsystem — `mutex_` in src/exec must never
/// alias `mutex_` in src/serve.
[[nodiscard]] std::string subsystem_of(const std::string& path);

}  // namespace cdlint
