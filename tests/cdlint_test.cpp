// Regression tests for tools/cdlint: the corpus must keep producing the
// golden findings (every rule stays live) and the real tree must stay clean
// against the committed -- empty -- baseline.
#include <sys/wait.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "support/minijson.hpp"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Runs a shell command, capturing stdout; stderr (the summary line) is
/// dropped so assertions see only the findings stream.
RunResult run_command(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string quoted(const std::string& path) { return "'" + path + "'"; }

const std::string kBinary = CDLINT_BINARY;
const std::string kRepoRoot = CDLINT_REPO_ROOT;
const std::string kCorpusRoot = kRepoRoot + "/tools/cdlint/testdata/tree";
const std::string kGoldenPath = kRepoRoot + "/tools/cdlint/testdata/golden.txt";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(CdlintTest, CorpusMatchesGoldenFindings) {
  const RunResult result =
      run_command(quoted(kBinary) + " --root " + quoted(kCorpusRoot));
  EXPECT_EQ(result.exit_code, 1) << "seeded corpus must produce findings";
  const std::string golden = read_file(kGoldenPath);
  ASSERT_FALSE(golden.empty()) << "missing golden file: " << kGoldenPath;
  EXPECT_EQ(result.output, golden);
}

TEST(CdlintTest, CorpusJsonIsValidAndCoversEveryRule) {
  const RunResult result = run_command(quoted(kBinary) + " --root " +
                                       quoted(kCorpusRoot) + " --json");
  EXPECT_EQ(result.exit_code, 1);
  const auto doc = minijson::parse(result.output);
  ASSERT_TRUE(doc.has_value()) << "cdlint --json emitted invalid JSON:\n"
                               << result.output;
  ASSERT_EQ(doc->kind, minijson::Value::Kind::kObject);

  const minijson::Value* findings = doc->find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->kind, minijson::Value::Kind::kArray);

  // The JSON view must agree with the golden text view line for line.
  const std::size_t golden_lines = count_lines(read_file(kGoldenPath));
  EXPECT_EQ(findings->items.size(), golden_lines);
  const minijson::Value* count = doc->find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->text, std::to_string(golden_lines));
  const minijson::Value* baselined = doc->find("baselined");
  ASSERT_NE(baselined, nullptr);
  EXPECT_EQ(baselined->text, "0");

  // Every rule -- including the allow-reason meta rule -- must stay live in
  // the corpus, or a silently dead rule could rot unnoticed.
  std::set<std::string> rules_seen;
  for (const minijson::Value& finding : findings->items) {
    ASSERT_EQ(finding.kind, minijson::Value::Kind::kObject);
    const minijson::Value* file = finding.find("file");
    const minijson::Value* line = finding.find("line");
    const minijson::Value* rule = finding.find("rule");
    const minijson::Value* message = finding.find("message");
    ASSERT_NE(file, nullptr);
    ASSERT_NE(line, nullptr);
    ASSERT_NE(rule, nullptr);
    ASSERT_NE(message, nullptr);
    EXPECT_EQ(line->kind, minijson::Value::Kind::kNumber);
    EXPECT_FALSE(message->text.empty());
    rules_seen.insert(rule->text);
  }
  const std::set<std::string> expected{
      "nondeterminism", "unordered-iter", "raw-parse", "naked-throw",
      "counter-in-loop", "stdout-in-lib", "include-first", "no-endl",
      "shared-mutable-capture", "lock-order-cycle", "blocking-under-lock",
      "thread-no-join", "fp-accumulation-order", "relaxed-order",
      "allow-reason"};
  EXPECT_EQ(rules_seen, expected);
}

TEST(CdlintTest, RealTreeIsCleanAgainstCommittedBaseline) {
  const RunResult result = run_command(
      quoted(kBinary) + " --root " + quoted(kRepoRoot) + " --baseline " +
      quoted(kRepoRoot + "/tools/cdlint/baseline.txt"));
  EXPECT_EQ(result.exit_code, 0) << "non-baselined findings in the tree:\n"
                                 << result.output;
  EXPECT_TRUE(result.output.empty()) << result.output;
}

TEST(CdlintTest, BaselineEntryConsumesExactlyOneFinding) {
  // unordered_out.cpp line 12 carries TWO identical findings (.begin() and
  // .end()).  One baseline entry must consume exactly one of them: entries
  // are a multiset, not a pattern.
  const std::string baseline_path =
      ::testing::TempDir() + "cdlint_consume_baseline.txt";
  {
    std::ofstream out(baseline_path, std::ios::trunc);
    out << "# one entry, two identical findings on the line\n"
        << "unordered-iter|src/core/unordered_out.cpp|"
        << "for (auto it = seen.begin(); it != seen.end(); ++it) {\n";
  }
  const RunResult result =
      run_command(quoted(kBinary) + " --root " + quoted(kCorpusRoot) +
                  " --baseline " + quoted(baseline_path));
  EXPECT_EQ(result.exit_code, 1);
  const std::size_t golden_lines = count_lines(read_file(kGoldenPath));
  EXPECT_EQ(count_lines(result.output), golden_lines - 1);
  EXPECT_NE(result.output.find("unordered_out.cpp:12"), std::string::npos)
      << "the second identical finding must survive one baseline entry";
  std::remove(baseline_path.c_str());
}

TEST(CdlintTest, UnknownOptionIsAUsageError) {
  const RunResult result = run_command(quoted(kBinary) + " --no-such-flag");
  EXPECT_EQ(result.exit_code, 2);
}

TEST(CdlintTest, NegativeThreadsIsAUsageError) {
  const RunResult result = run_command(quoted(kBinary) + " --root " +
                                       quoted(kCorpusRoot) + " --threads -3");
  EXPECT_EQ(result.exit_code, 2);
}

TEST(CdlintTest, FindingsAreByteIdenticalAcrossThreadCounts) {
  // The dogfooding contract: the parallel scan must produce exactly the
  // serial scan's bytes -- same findings, same order -- in both the text
  // and the JSON view.
  const RunResult serial = run_command(
      quoted(kBinary) + " --root " + quoted(kCorpusRoot) + " --threads 1");
  EXPECT_EQ(serial.exit_code, 1);
  ASSERT_FALSE(serial.output.empty());
  const RunResult serial_json =
      run_command(quoted(kBinary) + " --root " + quoted(kCorpusRoot) +
                  " --threads 1 --json");
  for (const int threads : {4, 8}) {
    const std::string flag = " --threads " + std::to_string(threads);
    const RunResult parallel = run_command(
        quoted(kBinary) + " --root " + quoted(kCorpusRoot) + flag);
    EXPECT_EQ(parallel.output, serial.output) << "threads=" << threads;
    const RunResult parallel_json = run_command(
        quoted(kBinary) + " --root " + quoted(kCorpusRoot) + flag + " --json");
    EXPECT_EQ(parallel_json.output, serial_json.output)
        << "threads=" << threads;
  }
}

TEST(CdlintTest, JsonFindingsAreSortedRegardlessOfDirOrder) {
  // Scan dirs given in reverse order on the command line: findings must
  // still come out sorted by (file, line, rule), not in scan order.
  const RunResult result = run_command(quoted(kBinary) + " --root " +
                                       quoted(kCorpusRoot) +
                                       " --json tests src");
  EXPECT_EQ(result.exit_code, 1);
  const auto doc = minijson::parse(result.output);
  ASSERT_TRUE(doc.has_value());
  const minijson::Value* findings = doc->find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_GT(findings->items.size(), 1u);
  std::vector<std::tuple<std::string, long, std::string>> keys;
  for (const minijson::Value& finding : findings->items) {
    const std::string& line_text = finding.find("line")->text;
    long line_number = 0;
    std::from_chars(line_text.data(), line_text.data() + line_text.size(),
                    line_number);
    keys.emplace_back(finding.find("file")->text, line_number,
                      finding.find("rule")->text);
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()))
      << "findings not sorted by (file, line, rule)";
  // Both dirs must actually be present: sorted output, full coverage.
  EXPECT_EQ(std::get<0>(keys.front()).rfind("src/", 0), 0u);
  EXPECT_EQ(std::get<0>(keys.back()).rfind("tests/", 0), 0u);
}

TEST(CdlintTest, AllowDirectiveInterplayWithCrossFileRules) {
  const RunResult result =
      run_command(quoted(kBinary) + " --root " + quoted(kCorpusRoot));
  // A reasoned allow on the write line and one on the capture line both
  // suppress the phase-2 shared-mutable-capture finding...
  EXPECT_EQ(result.output.find("parallel_capture.cpp:43"), std::string::npos)
      << "allow on the write line must suppress the R9 finding";
  EXPECT_EQ(result.output.find("parallel_capture.cpp:52"), std::string::npos)
      << "allow on the capture line must suppress the R9 finding";
  // ...while a reasonless allow suppresses nothing: the R9 finding fires
  // AND the meta rule reports the empty justification.
  EXPECT_NE(
      result.output.find(
          "parallel_capture.cpp:59: [allow-reason]"),
      std::string::npos);
  EXPECT_NE(
      result.output.find(
          "parallel_capture.cpp:61: [shared-mutable-capture]"),
      std::string::npos);
  // Cross-file allows hold for the other phase-2 rules too: the reversed
  // allowed_e_/allowed_f_ nesting and the deferred-join spawn are silent.
  EXPECT_EQ(result.output.find("allowed_e_"), std::string::npos);
  EXPECT_EQ(result.output.find("background"), std::string::npos);
}

TEST(CdlintTest, DumpIndexExposesCrossFileRecords) {
  const RunResult result = run_command(
      quoted(kBinary) + " --root " + quoted(kCorpusRoot) + " --dump-index");
  EXPECT_EQ(result.exit_code, 0) << "--dump-index reports no findings";
  // Spot-check one record of each cross-file species the phase-2 rules
  // consume, exactly as serialized between scan workers and the merge.
  EXPECT_NE(result.output.find("file\tsrc/serve/worker_spawn.cpp"),
            std::string::npos);
  EXPECT_NE(result.output.find("spawn\torphan\t"), std::string::npos);
  EXPECT_NE(result.output.find("spawn\t<temporary>\t"), std::string::npos);
  EXPECT_NE(result.output.find("join\tworker\t"), std::string::npos);
  EXPECT_NE(result.output.find("movealias\tkeepers_\tdrained"),
            std::string::npos);
  EXPECT_NE(result.output.find("rangealias\tworker\tdrained"),
            std::string::npos);
  EXPECT_NE(result.output.find("edge\torder_a_\torder_b_\t"),
            std::string::npos);
  EXPECT_NE(result.output.find("block\tread\tstate_mutex_\t"),
            std::string::npos);
  EXPECT_NE(result.output.find("mutex\tstate_mutex_\t"), std::string::npos);
  EXPECT_NE(result.output.find("threadvec\tkeepers_\t"), std::string::npos);
  EXPECT_NE(result.output.find("par\tparallel_for\t"), std::string::npos);
  EXPECT_NE(result.output.find("parcap\tref\tresults"), std::string::npos);
  EXPECT_NE(result.output.find("parwrite\ttotal\t"), std::string::npos);
  EXPECT_NE(result.output.find("fp\treduce\t"), std::string::npos);
  EXPECT_NE(result.output.find("relaxed\t"), std::string::npos);
  EXPECT_NE(result.output.find("allow\t"), std::string::npos);
}

}  // namespace
