#include "common/rng.hpp"

#include <cmath>

#include "common/units.hpp"

namespace cosmicdance {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return lo + static_cast<std::int64_t>((*this)());
  return lo + static_cast<std::int64_t>((*this)() % span);
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = units::kTwoPi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation for large means; adequate for arrival counts.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

Rng Rng::split() noexcept {
  return Rng((*this)());
}

namespace units {

double wrap_two_pi(double rad) noexcept {
  double wrapped = std::fmod(rad, kTwoPi);
  if (wrapped < 0.0) wrapped += kTwoPi;
  return wrapped;
}

double wrap_pi(double rad) noexcept {
  double wrapped = wrap_two_pi(rad);
  if (wrapped > kPi) wrapped -= kTwoPi;
  return wrapped;
}

}  // namespace units
}  // namespace cosmicdance
