// cdlint corpus: seeded violations for rule `blocking-under-lock` (R11).
#include <mutex>

std::mutex state_mutex_;

long read(int fd, char* buffer, unsigned long size);
int poll(void* fds, unsigned long count, int timeout_ms);

long refresh(int fd) {
  char buffer[64];
  long total = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    total += read(fd, buffer, sizeof(buffer));  // positive: blocking read under lock
    poll(nullptr, 0, 10);                       // positive: poll under lock
  }
  total += read(fd, buffer, sizeof(buffer));  // negative: lock already released
  return total;
}

long refresh_allowed(int fd) {
  char buffer[8];
  std::lock_guard<std::mutex> lock(state_mutex_);
  // cdlint: allow(blocking-under-lock) corpus seed: startup-only path, no reader can be waiting yet
  return read(fd, buffer, sizeof(buffer));
}
