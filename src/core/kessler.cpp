#include "core/kessler.hpp"

#include <cmath>

#include "common/units.hpp"
#include "orbit/constants.hpp"

namespace cosmicdance::core {

double shell_spatial_density(double shell_altitude_km, const KesslerConfig& config) {
  const double radius = shell_altitude_km + orbit::wgs72().radius_earth_km;
  const double shell_volume = 4.0 * units::kPi * radius * radius *
                              (2.0 * config.shells.half_width_km);
  return config.satellites_per_shell / shell_volume;
}

double collision_rate_per_dwell_year(double shell_altitude_km,
                                     const KesslerConfig& config) {
  const double n = shell_spatial_density(shell_altitude_km, config);  // 1/km^3
  const double rate_per_second =
      n * config.cross_section_km2 * config.relative_speed_km_s;
  return rate_per_second * units::kSecondsPerDay * 365.25;
}

ConjunctionExposure conjunction_exposure(std::span<const SatelliteTrack> tracks,
                                         double jd_lo, double jd_hi,
                                         const KesslerConfig& config) {
  ConjunctionExposure exposure;
  // Clip each track to the window, then reuse the dwell estimator.
  std::vector<SatelliteTrack> clipped;
  for (const SatelliteTrack& track : tracks) {
    const auto window = track.between(jd_lo, jd_hi);
    if (window.size() < 2) continue;
    clipped.emplace_back(
        track.catalog_number(),
        std::vector<TrajectorySample>(window.begin(), window.end()));
  }
  exposure.dwell_days = foreign_shell_dwell_days(clipped, config.shells);

  // Use the mid-shell rate as representative (shells are a few km apart;
  // the density varies by < 1% across them).
  if (!config.shells.shell_altitudes_km.empty()) {
    const double mid = config.shells.shell_altitudes_km
                           [config.shells.shell_altitudes_km.size() / 2];
    exposure.expected_collisions = collision_rate_per_dwell_year(mid, config) *
                                   exposure.dwell_days / 365.25;
  }
  return exposure;
}

}  // namespace cosmicdance::core
