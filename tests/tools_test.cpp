// Tests for the CLI-supporting components: argument parsing, CSV export,
// and the tools/bench_compare.py telemetry differ (run as a subprocess).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/error.hpp"
#include "core/export.hpp"
#include "io/args.hpp"
#include "io/file.hpp"
#include "io/parse.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance {
namespace {

using io::ArgParser;

TEST(ArgsTest, CommandAndPositionals) {
  const ArgParser args({"analyze", "extra1", "extra2"});
  EXPECT_EQ(args.command(), "analyze");
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "extra1");
}

TEST(ArgsTest, OptionsWithValues) {
  const ArgParser args({"simulate", "--dst", "d.wdc", "--seed", "42"});
  EXPECT_EQ(args.option_or("dst", "x"), "d.wdc");
  EXPECT_EQ(args.integer_or("seed", 0), 42);
  EXPECT_FALSE(args.option("missing").has_value());
  EXPECT_EQ(args.option_or("missing", "fallback"), "fallback");
}

TEST(ArgsTest, FlagsWithoutValues) {
  const ArgParser args({"cmd", "--verbose", "--out", "f.csv"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_FALSE(args.option("verbose").has_value());
  EXPECT_TRUE(args.flag("out"));
  EXPECT_EQ(args.option_or("out", ""), "f.csv");
  EXPECT_FALSE(args.flag("absent"));
}

TEST(ArgsTest, TrailingFlag) {
  const ArgParser args({"cmd", "--dry-run"});
  EXPECT_TRUE(args.flag("dry-run"));
}

TEST(ArgsTest, NumberParsing) {
  const ArgParser args({"cmd", "--threshold", "-63.5", "--count", "7"});
  EXPECT_DOUBLE_EQ(args.number_or("threshold", 0.0), -63.5);
  EXPECT_EQ(args.integer_or("count", 0), 7);
  EXPECT_DOUBLE_EQ(args.number_or("absent", 1.5), 1.5);
}

TEST(ArgsTest, NumberErrors) {
  const ArgParser args({"cmd", "--threshold", "abc"});
  EXPECT_THROW((void)args.number_or("threshold", 0.0), ParseError);
  EXPECT_THROW((void)args.integer_or("threshold", 0), ParseError);
}

TEST(ArgsTest, NonnegativeIntegerAcceptsZeroAndPositive) {
  const ArgParser args({"cmd", "--threads", "4"});
  EXPECT_EQ(args.nonnegative_integer_or("threads", 0), 4);
  EXPECT_EQ(args.nonnegative_integer_or("absent", 8), 8);
  const ArgParser zero({"cmd", "--threads", "0"});
  EXPECT_EQ(zero.nonnegative_integer_or("threads", 2), 0);
}

TEST(ArgsTest, NonnegativeIntegerRejectsNegativesWithAClearMessage) {
  // "-3" parses fine as an integer (NegativeNumbersAreValuesNotOptions
  // below), so thread counts need the sign check on top — a negative
  // count would otherwise be cast straight into the exec pool size.
  const ArgParser args({"cmd", "--threads", "-3"});
  try {
    (void)args.nonnegative_integer_or("threads", 0);
    FAIL() << "negative --threads accepted";
  } catch (const ParseError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("--threads"), std::string::npos) << message;
    EXPECT_NE(message.find("non-negative"), std::string::npos) << message;
    EXPECT_NE(message.find("-3"), std::string::npos) << message;
  }
}

TEST(ArgsTest, NegativeNumbersAreValuesNotOptions) {
  // "-63" does not start with "--", so it is consumed as a value.
  const ArgParser args({"cmd", "--threshold", "-63"});
  EXPECT_DOUBLE_EQ(args.number_or("threshold", 0.0), -63.0);
}

TEST(ArgsTest, CheckKnownCatchesTypos) {
  const ArgParser args({"cmd", "--outt", "f"});
  EXPECT_THROW(args.check_known({"out"}), ParseError);
  EXPECT_NO_THROW(args.check_known({"outt"}));
}

TEST(ArgsTest, RejectsBareDoubleDash) {
  EXPECT_THROW(ArgParser({"cmd", "--"}), ParseError);
}

TEST(ArgsTest, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "storms", "--dst", "d.wdc"};
  const ArgParser args(4, argv);
  EXPECT_EQ(args.command(), "storms");
  EXPECT_EQ(args.option_or("dst", ""), "d.wdc");
}

// ------------------------------- export -------------------------------------

TEST(ExportTest, EcdfCsvShape) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  const auto rows = core::ecdf_csv(stats::Ecdf(sample), "alt_km", 10);
  ASSERT_GE(rows.size(), 3u);
  EXPECT_EQ(rows[0], (io::CsvRow{"alt_km", "cdf"}));
  EXPECT_EQ(rows.back()[1], "1");
  // Parse-back sanity: values are numeric and monotone.
  double previous = -1e9;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto x = io::parse_double(rows[i][0]);
    ASSERT_TRUE(x.has_value()) << "non-numeric CSV cell: " << rows[i][0];
    EXPECT_GE(*x, previous);
    previous = *x;
  }
}

TEST(ExportTest, StormsCsv) {
  spaceweather::StormEvent event;
  event.start_hour = timeutil::hour_index_from_datetime(
      timeutil::make_datetime(2023, 4, 23, 19));
  event.end_hour = event.start_hour + 17;
  event.peak_hour = event.start_hour + 5;
  event.peak_dst_nt = -213.0;
  event.category = spaceweather::StormCategory::kSevere;
  const auto rows = core::storms_csv(std::vector<spaceweather::StormEvent>{event});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][2], "-213");
  EXPECT_EQ(rows[1][3], "severe");
  EXPECT_EQ(rows[1][4], "17");
  EXPECT_NE(rows[1][0].find("2023-04-23"), std::string::npos);
}

TEST(ExportTest, EnvelopeCsvHandlesNan) {
  core::PostEventEnvelope envelope;
  envelope.days = 2;
  envelope.satellites = {45001};
  envelope.per_satellite = {{1.5, std::nan("")}};
  envelope.median_km = {1.5, std::nan("")};
  envelope.p95_km = {1.5, std::nan("")};
  const auto rows = core::envelope_csv(envelope);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].back(), "sat_45001");
  EXPECT_EQ(rows[1][1], "1.5");
  EXPECT_EQ(rows[2][1], "");  // NaN -> empty cell
}

TEST(ExportTest, PanelCsv) {
  core::SuperstormPanelRow row;
  row.day_jd = timeutil::to_julian(timeutil::make_datetime(2024, 5, 10));
  row.dst_min_nt = -409.0;
  row.bstar_median = 3.2e-4;
  row.tracked_satellites = 1200;
  row.tle_count = 2400;
  const auto rows = core::panel_csv(std::vector<core::SuperstormPanelRow>{row});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "-409");
  EXPECT_EQ(rows[1][5], "1200");
}

TEST(ExportTest, TimelineCsv) {
  core::TrackTimeline timeline;
  timeline.catalog_number = 44943;
  timeline.epoch_jd = {timeutil::to_julian(timeutil::make_datetime(2024, 3, 3))};
  timeline.altitude_km = {549.5};
  timeline.bstar = {2.5e-4};
  const auto rows = core::timeline_csv(timeline);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NE(rows[1][0].find("2024-03-03"), std::string::npos);
  EXPECT_EQ(rows[1][1], "549.5");
}

// ---- tools/bench_compare.py -------------------------------------------------
//
// The differ is tier-1 plumbing (tools/run_tier1.sh pass 4 feeds it
// BENCH_*.json records), so its contract is pinned here: completed
// comparisons — including regressions, which are warn-only — exit 0, while
// malformed input of any kind exits 2 with an actionable message instead
// of a traceback.

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout and stderr, interleaved
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

class BenchCompareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (run_command("python3 -c 'pass'").exit_code != 0) {
      GTEST_SKIP() << "python3 not available";
    }
    // Per-process directory: ctest runs each TEST_F as its own process in
    // parallel, so a shared fixture dir would let one test's remove_all
    // delete another's files mid-run.  (The pid, not the test name: error
    // messages echo the path, and assertions below inspect the output.)
    dir_ = ::testing::TempDir() + "cd_bench_compare_" +
           std::to_string(static_cast<long>(getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  std::string write_record(const std::string& name, const std::string& json) {
    const std::string path = dir_ + "/" + name;
    io::write_file(path, json);
    return path;
  }

  CommandResult compare(const std::string& baseline, const std::string& current,
                        const std::string& extra = "") {
    const std::string script =
        std::string(COSMICDANCE_REPO_ROOT) + "/tools/bench_compare.py";
    return run_command("python3 '" + script + "' '" + baseline + "' '" +
                       current + "' " + extra);
  }

  std::string dir_;
};

TEST_F(BenchCompareTest, CompletedComparisonExitsZero) {
  const std::string baseline = write_record(
      "base.json", R"({"bench": "b", "throughput": {"a": 100, "b": 50}})");
  const std::string current = write_record(
      "cur.json", R"({"bench": "b", "throughput": {"a": 110, "b": 49}})");
  const CommandResult result = compare(baseline, current);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("ok    b/a"), std::string::npos) << result.output;
}

TEST_F(BenchCompareTest, RegressionsWarnButStillExitZero) {
  const std::string baseline =
      write_record("base.json", R"({"bench": "b", "throughput": {"a": 100}})");
  const std::string current =
      write_record("cur.json", R"({"bench": "b", "throughput": {"a": 10}})");
  const CommandResult result = compare(baseline, current);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("WARN"), std::string::npos) << result.output;
}

TEST_F(BenchCompareTest, FailUnderGatesCollapsesWithExitOne) {
  // -90% is past any sane gate; tier-1 wires --fail-under=40 for the
  // ingest and sgp4 records, so the exit-1 path is load-bearing CI.
  const std::string baseline =
      write_record("base.json", R"({"bench": "b", "throughput": {"a": 100}})");
  const std::string current =
      write_record("cur.json", R"({"bench": "b", "throughput": {"a": 10}})");
  const CommandResult result = compare(baseline, current, "--fail-under=40");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("FAIL  b/a"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("collapsed beyond the --fail-under gate"),
            std::string::npos)
      << result.output;
}

TEST_F(BenchCompareTest, FailUnderStillWarnsInsideTheGateBand) {
  // A -35% drop is beyond the 30% warn tolerance but inside the 40% gate:
  // the run must warn, not fail — the two thresholds are independent.
  const std::string baseline =
      write_record("base.json", R"({"bench": "b", "throughput": {"a": 100}})");
  const std::string current =
      write_record("cur.json", R"({"bench": "b", "throughput": {"a": 65}})");
  const CommandResult result = compare(baseline, current, "--fail-under=40");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("WARN"), std::string::npos) << result.output;
  EXPECT_EQ(result.output.find("FAIL"), std::string::npos) << result.output;
}

TEST_F(BenchCompareTest, AsymmetricKeysAreNotesNotErrors) {
  const std::string baseline =
      write_record("base.json", R"({"bench": "b", "throughput": {"old": 5}})");
  const std::string current =
      write_record("cur.json", R"({"bench": "b", "throughput": {"new": 7}})");
  const CommandResult result = compare(baseline, current);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("NOTE"), std::string::npos) << result.output;
}

TEST_F(BenchCompareTest, EmptyFileExitsTwoWithClearMessage) {
  const std::string baseline = write_record("base.json", "");
  const std::string current =
      write_record("cur.json", R"({"bench": "b", "throughput": {"a": 1}})");
  const CommandResult result = compare(baseline, current);
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("bench_compare: cannot read"), std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("Traceback"), std::string::npos) << result.output;
}

TEST_F(BenchCompareTest, MissingThroughputObjectExitsTwo) {
  const std::string baseline = write_record("base.json", R"({"bench": "b"})");
  const std::string current =
      write_record("cur.json", R"({"bench": "b", "throughput": {"a": 1}})");
  const CommandResult result = compare(baseline, current);
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("not a bench record"), std::string::npos)
      << result.output;
}

TEST_F(BenchCompareTest, NonNumericThroughputExitsTwoInsteadOfTraceback) {
  // Regression: a string (or nested object) rate used to raise inside the
  // float() conversion and escape as a traceback with a misleading exit 1.
  const std::string baseline = write_record(
      "base.json", R"({"bench": "b", "throughput": {"a": "fast"}})");
  const std::string current = write_record(
      "cur.json", R"({"bench": "b", "throughput": {"a": {"rate": 1}}})");
  for (const auto& [first, second] :
       {std::pair(baseline, current), std::pair(current, baseline)}) {
    const CommandResult result = compare(first, second);
    EXPECT_EQ(result.exit_code, 2) << result.output;
    EXPECT_NE(result.output.find("is not a number"), std::string::npos)
        << result.output;
    EXPECT_EQ(result.output.find("Traceback"), std::string::npos)
        << result.output;
  }
}

TEST_F(BenchCompareTest, BadUsageExitsTwo) {
  const std::string record =
      write_record("base.json", R"({"bench": "b", "throughput": {"a": 1}})");
  EXPECT_EQ(compare(record, record, "--tolerance=abc").exit_code, 2);
  EXPECT_EQ(compare(record, record, "--bogus=1").exit_code, 2);
  EXPECT_EQ(compare(record, record, "--fail-under=abc").exit_code, 2);
  EXPECT_EQ(compare(record, record, "--fail-under=150").exit_code, 2);
  const std::string script =
      std::string(COSMICDANCE_REPO_ROOT) + "/tools/bench_compare.py";
  EXPECT_EQ(run_command("python3 '" + script + "'").exit_code, 2);
}

// ---- negative --threads at the process boundary -----------------------------
//
// Both front-ends funnel --threads through nonnegative_integer_or, and the
// check fires before any input file is opened — the missing .wdc/.tle paths
// below prove the ordering: a file error would be a different message.

TEST(CliThreadsTest, CliRejectsNegativeThreadsWithAUsageError) {
  const std::string out_dir = ::testing::TempDir() + "cd_cli_threads";
  const CommandResult result = run_command(
      std::string("'") + COSMICDANCE_CLI_BINARY +
      "' analyze --dst missing.wdc --tles missing.tle --out-dir '" + out_dir +
      "' --threads -3");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("--threads"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("non-negative"), std::string::npos)
      << result.output;
}

TEST(CliThreadsTest, DaemonRejectsNegativeThreadsBeforeListening) {
  const CommandResult result = run_command(
      std::string("'") + COSMICDANCED_BINARY +
      "' --listen 127.0.0.1:0 --dst missing.wdc --tles missing.tle"
      " --threads -3");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("--threads"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("non-negative"), std::string::npos)
      << result.output;
}

}  // namespace
}  // namespace cosmicdance
