file(REMOVE_RECURSE
  "CMakeFiles/cd_io.dir/args.cpp.o"
  "CMakeFiles/cd_io.dir/args.cpp.o.d"
  "CMakeFiles/cd_io.dir/csv.cpp.o"
  "CMakeFiles/cd_io.dir/csv.cpp.o.d"
  "CMakeFiles/cd_io.dir/file.cpp.o"
  "CMakeFiles/cd_io.dir/file.cpp.o.d"
  "CMakeFiles/cd_io.dir/table.cpp.o"
  "CMakeFiles/cd_io.dir/table.cpp.o.d"
  "libcd_io.a"
  "libcd_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
