file(REMOVE_RECURSE
  "libcd_orbit.a"
)
