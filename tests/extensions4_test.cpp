// Tests for conjunction screening and correlation statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/conjunctions.hpp"
#include "orbit/elements.hpp"
#include "stats/correlation.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance {
namespace {

using timeutil::make_datetime;

tle::Tle circular(int catalog, double altitude_km, double raan_deg,
                  double mean_anomaly_deg, double inclination_deg = 53.0) {
  tle::Tle t;
  t.catalog_number = catalog;
  t.international_designator = "20001A";
  t.epoch_jd = timeutil::to_julian(make_datetime(2023, 6, 1));
  t.inclination_deg = inclination_deg;
  t.raan_deg = raan_deg;
  t.eccentricity = 1e-4;
  t.arg_perigee_deg = 0.0;
  t.mean_anomaly_deg = mean_anomaly_deg;
  t.mean_motion_revday = orbit::mean_motion_from_altitude_km(altitude_km);
  t.bstar = 0.0;
  return t;
}

// ----------------------------- conjunctions ---------------------------------

TEST(ConjunctionTest, CoplanarOppositePhaseNeverClose) {
  // Same orbit, 180 degrees apart: separation stays near the orbit diameter.
  const tle::Tle a = circular(100, 550.0, 120.0, 0.0);
  const tle::Tle b = circular(200, 550.0, 120.0, 180.0);
  const auto approach =
      core::closest_approach(a, b, a.epoch_jd, 1.0);
  ASSERT_TRUE(approach.has_value());
  EXPECT_GT(approach->distance_km, 12000.0);  // ~2a = 13856 km
  EXPECT_EQ(approach->catalog_a, 100);
  EXPECT_EQ(approach->catalog_b, 200);
}

TEST(ConjunctionTest, SamePhaseSameOrbitIsCoincident) {
  // Identical elements: zero separation at all times (degenerate but the
  // search must not blow up).
  const tle::Tle a = circular(100, 550.0, 120.0, 40.0);
  tle::Tle b = a;
  b.catalog_number = 200;
  const auto approach = core::closest_approach(a, b, a.epoch_jd, 0.2);
  ASSERT_TRUE(approach.has_value());
  EXPECT_LT(approach->distance_km, 0.5);
}

TEST(ConjunctionTest, CrossingPlanesCloserThanAntiPhase) {
  // Same shell, planes 40 degrees apart: equal mean motions lock the
  // relative phase, so the minimum is a fixed geometric distance — much
  // closer than the anti-phase coplanar pair but not arbitrarily small.
  const tle::Tle a = circular(100, 550.0, 100.0, 0.0);
  const tle::Tle b = circular(200, 550.0, 140.0, 10.0);
  const auto approach = core::closest_approach(a, b, a.epoch_jd, 1.0);
  ASSERT_TRUE(approach.has_value());
  EXPECT_LT(approach->distance_km, 5000.0);
  EXPECT_GT(approach->distance_km, 100.0);

  // Phased to meet at a node: the same geometry becomes a genuine close
  // approach.
  const tle::Tle c = circular(300, 550.0, 140.0, 331.3);
  const auto close = core::closest_approach(a, c, a.epoch_jd, 1.0);
  ASSERT_TRUE(close.has_value());
  EXPECT_LT(close->distance_km, approach->distance_km);
}

TEST(ConjunctionTest, DifferentShellsKeepVerticalSeparation) {
  // 540 vs 560 km shells, same plane/phase: minimum distance ~ the 20 km
  // radial gap (slight drift aside).
  const tle::Tle a = circular(100, 540.0, 120.0, 0.0);
  const tle::Tle b = circular(200, 560.0, 120.0, 0.0);
  const auto approach = core::closest_approach(a, b, a.epoch_jd, 0.5);
  ASSERT_TRUE(approach.has_value());
  EXPECT_GT(approach->distance_km, 10.0);
  EXPECT_LT(approach->distance_km, 60.0);
}

TEST(ConjunctionTest, ScreenSortsAndThresholds) {
  const tle::Tle object = circular(100, 550.0, 120.0, 0.0);
  std::vector<tle::Tle> others;
  others.push_back(circular(201, 550.0, 120.0, 180.0));  // far (anti-phase)
  others.push_back(circular(202, 550.5, 120.0, 0.3));    // near
  others.push_back(circular(100, 550.0, 120.0, 0.0));    // self: skipped
  core::ConjunctionConfig config;
  config.threshold_km = 100.0;
  const auto hits =
      core::screen_against(object, others, object.epoch_jd, 0.3, config);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].catalog_b, 202);
}

TEST(ConjunctionTest, Validation) {
  const tle::Tle a = circular(100, 550.0, 120.0, 0.0);
  EXPECT_THROW((void)core::closest_approach(a, a, a.epoch_jd, 0.0),
               ValidationError);
  core::ConjunctionConfig config;
  config.coarse_step_seconds = 0.0;
  EXPECT_THROW((void)core::closest_approach(a, a, a.epoch_jd, 1.0, config),
               ValidationError);
}

// ------------------------------ correlation ---------------------------------

TEST(CorrelationTest, PerfectLinear) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_NEAR(stats::pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(stats::pearson(x, neg), -1.0, 1e-12);
}

TEST(CorrelationTest, SpearmanInvariantToMonotoneTransforms) {
  Rng rng(4);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.1, 10.0);
    x.push_back(v);
    y.push_back(std::exp(v) + rng.uniform(0.0, 1e-6));
  }
  // Nonlinear but monotone: Spearman ~ 1, Pearson < 1.
  EXPECT_NEAR(stats::spearman(x, y), 1.0, 1e-9);
  EXPECT_LT(stats::pearson(x, y), 0.95);
}

TEST(CorrelationTest, IndependentNearZero) {
  Rng rng(5);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 3000; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  EXPECT_NEAR(stats::pearson(x, y), 0.0, 0.06);
  EXPECT_NEAR(stats::spearman(x, y), 0.0, 0.06);
}

TEST(CorrelationTest, TiesHandled) {
  const std::vector<double> x{1.0, 1.0, 2.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_GT(stats::spearman(x, y), 0.8);
}

TEST(CorrelationTest, Validation) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y3{1.0, 2.0, 3.0};
  const std::vector<double> constant{2.0, 2.0};
  EXPECT_THROW((void)stats::pearson(x, y3), ValidationError);
  EXPECT_THROW((void)stats::pearson(std::vector<double>{1.0},
                                    std::vector<double>{2.0}),
               ValidationError);
  EXPECT_THROW((void)stats::pearson(x, constant), ValidationError);
}

TEST(CorrelationTest, StormIntensityCorrelatesWithImpact) {
  // Synthetic end-to-end check: deeper storms produce larger altitude
  // changes in the generator+correlator stack (rank correlation over the
  // scripted relationship impact ~ intensity).
  Rng rng(6);
  std::vector<double> intensity;
  std::vector<double> impact;
  for (int i = 0; i < 100; ++i) {
    const double peak = rng.uniform(50.0, 400.0);
    intensity.push_back(peak);
    impact.push_back(0.05 * peak + rng.normal(0.0, 3.0));
  }
  EXPECT_GT(stats::spearman(intensity, impact), 0.6);
}

}  // namespace
}  // namespace cosmicdance
