// Minimal command-line argument parsing for the bundled tools.
//
// Grammar: [command] (--key value | --flag)* positional*
// A token starting with "--" is an option; it consumes the next token as
// its value unless that token is itself an option (then it is a flag).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cosmicdance::io {

class ArgParser {
 public:
  /// Parse from main()'s argv (argv[0] is skipped).
  ArgParser(int argc, const char* const* argv);
  /// Parse from a token list (no program name).
  explicit ArgParser(std::vector<std::string> tokens);

  /// First positional token (conventionally the subcommand), or "".
  [[nodiscard]] const std::string& command() const noexcept { return command_; }
  /// Positional tokens after the command.
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  /// Value of --name, when given with a value.
  [[nodiscard]] std::optional<std::string> option(const std::string& name) const;
  /// Value of --name or a default.
  [[nodiscard]] std::string option_or(const std::string& name,
                                      std::string fallback) const;
  /// Numeric value of --name or a default.  Throws ParseError when the
  /// value is present but not numeric.
  [[nodiscard]] double number_or(const std::string& name, double fallback) const;
  [[nodiscard]] long integer_or(const std::string& name, long fallback) const;
  /// integer_or that additionally rejects negative values with a usage
  /// error naming the option — for counts (thread counts, sizes) where a
  /// negative would otherwise flow into internal arithmetic as a huge
  /// unsigned or an undefined worker count.
  [[nodiscard]] long nonnegative_integer_or(const std::string& name,
                                            long fallback) const;
  /// True when --name appeared (with or without a value).
  [[nodiscard]] bool flag(const std::string& name) const;

  /// Throws ParseError when any option is not in `known` — catches typos.
  void check_known(const std::vector<std::string>& known) const;

 private:
  void parse(std::vector<std::string> tokens);

  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> present_;
};

}  // namespace cosmicdance::io
