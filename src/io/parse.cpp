#include "io/parse.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

namespace cosmicdance::io {
namespace {

// The C conversion functions need NUL-terminated input.  Views short enough
// for a stack buffer (every fixed-width archive field is) are copied there;
// longer ones take one heap copy.  `Terminated` keeps the strtod/strtol
// semantics byte-for-byte identical to the historical std::string path,
// including embedded NULs terminating the scan early (which the full-
// consumption check then rejects).
class Terminated {
 public:
  explicit Terminated(std::string_view text) {
    if (text.size() < sizeof(buffer_)) {
      std::memcpy(buffer_, text.data(), text.size());
      buffer_[text.size()] = '\0';
      begin_ = buffer_;
    } else {
      heap_.assign(text);
      begin_ = heap_.c_str();
    }
  }
  [[nodiscard]] const char* c_str() const noexcept { return begin_; }

 private:
  char buffer_[128];
  std::string heap_;
  const char* begin_ = nullptr;
};

}  // namespace

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const Terminated terminated(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(terminated.c_str(), &end);
  if (end != terminated.c_str() + text.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return value;
}

std::optional<long> parse_long(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const Terminated terminated(text);
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(terminated.c_str(), &end, 10);
  if (end != terminated.c_str() + text.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return value;
}

std::optional<long> parse_leading_long(std::string_view text) {
  const Terminated terminated(text);
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(terminated.c_str(), &end, 10);
  if (end == terminated.c_str() || errno == ERANGE) return std::nullopt;
  return value;
}

}  // namespace cosmicdance::io
