# Empty compiler generated dependencies file for cd_simulation.
# This may be replaced when dependencies are built.
