file(REMOVE_RECURSE
  "CMakeFiles/service_holes.dir/service_holes.cpp.o"
  "CMakeFiles/service_holes.dir/service_holes.cpp.o.d"
  "service_holes"
  "service_holes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_holes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
