# Empty dependencies file for sgp4_deepspace_test.
# This may be replaced when dependencies are built.
