# Empty compiler generated dependencies file for cd_stats.
# This may be replaced when dependencies are built.
