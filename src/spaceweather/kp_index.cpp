#include "spaceweather/kp_index.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"

namespace cosmicdance::spaceweather {
namespace {

// Official ap equivalents for Kp = 0o, 0+, 1-, 1o, ... 9o.
constexpr std::array<double, 28> kApTable{
    0,  2,  3,  4,  5,  6,  7,  9,  12, 15,  18,  22,  27,  32,
    39, 48, 56, 67, 80, 94, 111, 132, 154, 179, 207, 236, 300, 400};

int kp_step_index(double kp) noexcept {
  const double clamped = std::clamp(kp, 0.0, 9.0);
  return static_cast<int>(std::lround(clamped * 3.0));
}

}  // namespace

double round_to_kp_step(double kp) noexcept {
  return kp_step_index(kp) / 3.0;
}

double ap_from_kp(double kp) {
  if (kp < -0.5 || kp > 9.5) {
    throw ValidationError("Kp outside [0,9]: " + std::to_string(kp));
  }
  return kApTable[static_cast<std::size_t>(kp_step_index(kp))];
}

double kp_from_ap(double ap) {
  if (ap < 0.0) throw ValidationError("ap must be non-negative");
  std::size_t best = 0;
  for (std::size_t i = 1; i < kApTable.size(); ++i) {
    if (std::fabs(kApTable[i] - ap) < std::fabs(kApTable[best] - ap)) best = i;
  }
  return static_cast<double>(best) / 3.0;
}

double kp_from_dst(double dst_nt) noexcept {
  // Piecewise-linear storm-time fit through the conventional anchor points:
  //   0 nT -> Kp 1, -50 -> 5 (G1), -100 -> 6 (G2), -200 -> 7 (G3-ish
  //   boundary), -350 -> 8.67, <= -500 -> 9.
  struct Anchor {
    double dst;
    double kp;
  };
  constexpr Anchor anchors[] = {{20.0, 0.0},   {0.0, 1.0},    {-50.0, 5.0},
                                {-100.0, 6.0}, {-200.0, 7.0}, {-350.0, 8.67},
                                {-500.0, 9.0}};
  if (dst_nt >= anchors[0].dst) return anchors[0].kp;
  for (std::size_t i = 1; i < std::size(anchors); ++i) {
    if (dst_nt >= anchors[i].dst) {
      const auto& hi = anchors[i - 1];
      const auto& lo = anchors[i];
      const double t = (dst_nt - lo.dst) / (hi.dst - lo.dst);
      return round_to_kp_step(lo.kp + t * (hi.kp - lo.kp));
    }
  }
  return 9.0;
}

int g_level_from_kp(double kp) noexcept {
  const double step = round_to_kp_step(kp);
  if (step >= 9.0) return 5;
  if (step >= 8.0) return 4;
  if (step >= 7.0) return 3;
  if (step >= 6.0) return 2;
  if (step >= 5.0) return 1;
  return 0;
}

std::string g_label(int g_level) {
  if (g_level < 0 || g_level > 5) {
    throw ValidationError("G level outside 0..5: " + std::to_string(g_level));
  }
  // Sequential append: GCC 12's -Wrestrict misfires on "G" + to_string
  // when inlined under -O2 (PR 105651).
  std::string label = "G";
  label += std::to_string(g_level);
  return label;
}

}  // namespace cosmicdance::spaceweather
