#include "spaceweather/gscale.hpp"

#include "common/error.hpp"

namespace cosmicdance::spaceweather {

StormCategory classify(double dst_nt) noexcept {
  if (dst_nt <= kExtremeThresholdNt) return StormCategory::kExtreme;
  if (dst_nt <= kSevereThresholdNt) return StormCategory::kSevere;
  if (dst_nt <= kModerateThresholdNt) return StormCategory::kModerate;
  if (dst_nt <= kMinorThresholdNt) return StormCategory::kMinor;
  return StormCategory::kQuiet;
}

std::string to_string(StormCategory category) {
  switch (category) {
    case StormCategory::kQuiet:
      return "quiet";
    case StormCategory::kMinor:
      return "minor";
    case StormCategory::kModerate:
      return "moderate";
    case StormCategory::kSevere:
      return "severe";
    case StormCategory::kExtreme:
      return "extreme";
  }
  return "unknown";
}

double threshold(StormCategory category) {
  switch (category) {
    case StormCategory::kMinor:
      return kMinorThresholdNt;
    case StormCategory::kModerate:
      return kModerateThresholdNt;
    case StormCategory::kSevere:
      return kSevereThresholdNt;
    case StormCategory::kExtreme:
      return kExtremeThresholdNt;
    case StormCategory::kQuiet:
      break;
  }
  throw ValidationError("quiet is not a storm category");
}

}  // namespace cosmicdance::spaceweather
