# Empty dependencies file for fig03_timeseries.
# This may be replaced when dependencies are built.
