// Launch scheduling: batches of satellites entering the simulation.
#pragma once

#include <vector>

#include "simulation/satellite.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance::simulation {

/// One launch of `count` satellites sharing a plane (RAAN) and shell.
struct LaunchBatch {
  timeutil::DateTime time;
  int count = 60;
  SatelliteConfig satellite;  ///< configuration applied to every satellite
  double raan_deg = 0.0;      ///< orbital plane of the batch
  /// Checkout dwell at the staging orbit before raising begins (days).
  double staging_days = 45.0;
  /// When true, the batch enters the simulation already operational at its
  /// target altitude (used to pre-seed an established fleet for short
  /// scenarios like the May-2024 window).
  bool prelaunched = false;
  /// When positive, the batch's catalog numbers start here instead of the
  /// running counter (used to pin specific NORAD ids, e.g. Fig 3's
  /// satellites #44943/#45400/#45766).
  int first_catalog_number = 0;
};

/// A Starlink-like cadence: one batch every `cadence_days` from `first`
/// (inclusive) until `until` (exclusive), planes spread evenly in RAAN.
/// The real system launched ~60 satellites every ~10 days; scaled-down
/// reproductions shrink `count` instead of the cadence so the deployment
/// *timeline* matches the paper's.
[[nodiscard]] std::vector<LaunchBatch> starlink_like_plan(
    const timeutil::DateTime& first, const timeutil::DateTime& until,
    double cadence_days, int count_per_batch,
    const SatelliteConfig& satellite = {});

}  // namespace cosmicdance::simulation
