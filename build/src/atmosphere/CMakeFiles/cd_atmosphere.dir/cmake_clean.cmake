file(REMOVE_RECURSE
  "CMakeFiles/cd_atmosphere.dir/drag.cpp.o"
  "CMakeFiles/cd_atmosphere.dir/drag.cpp.o.d"
  "CMakeFiles/cd_atmosphere.dir/exponential.cpp.o"
  "CMakeFiles/cd_atmosphere.dir/exponential.cpp.o.d"
  "CMakeFiles/cd_atmosphere.dir/lifetime.cpp.o"
  "CMakeFiles/cd_atmosphere.dir/lifetime.cpp.o.d"
  "CMakeFiles/cd_atmosphere.dir/stationkeeping_budget.cpp.o"
  "CMakeFiles/cd_atmosphere.dir/stationkeeping_budget.cpp.o.d"
  "CMakeFiles/cd_atmosphere.dir/storm_density.cpp.o"
  "CMakeFiles/cd_atmosphere.dir/storm_density.cpp.o.d"
  "libcd_atmosphere.a"
  "libcd_atmosphere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_atmosphere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
