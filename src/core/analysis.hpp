// Figure-level analyses: each function assembles exactly the data series
// one of the paper's evaluation figures plots (see DESIGN.md's index).
#pragma once

#include <vector>

#include "core/correlator.hpp"
#include "core/track.hpp"
#include "spaceweather/dst_index.hpp"
#include "stats/ecdf.hpp"

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::core {

/// Fig 10: altitude samples of every TLE in a track set (raw tracks give
/// panel (a); cleaned tracks give panel (b)).  Output order is track-major
/// regardless of num_threads (0 = all hardware threads, 1 = serial).
/// `metrics` (optional) records analysis.altitude_samples and phase timing.
[[nodiscard]] std::vector<double> all_altitudes(std::span<const SatelliteTrack> tracks,
                                                int num_threads = 1,
                                                obs::Metrics* metrics = nullptr);

/// Fig 7: one row per UT day across an analysis window.
struct SuperstormPanelRow {
  double day_jd = 0.0;
  double dst_min_nt = 0.0;     ///< most negative hourly Dst of the day
  double bstar_mean = 0.0;
  double bstar_median = 0.0;
  double bstar_p95 = 0.0;
  long tracked_satellites = 0;  ///< distinct satellites with a TLE that day
  long tle_count = 0;
};

/// Build the Fig 7 panel between two Julian dates (inclusive start day,
/// exclusive end).  Days without TLEs carry zero drag statistics.  Rows are
/// computed one day per worker and returned in day order.
[[nodiscard]] std::vector<SuperstormPanelRow> superstorm_panel(
    std::span<const SatelliteTrack> tracks, const spaceweather::DstIndex& dst,
    double start_jd, double end_jd, int num_threads = 1,
    obs::Metrics* metrics = nullptr);

/// Fig 3: the merged per-satellite time series (Dst is plotted separately).
struct TrackTimeline {
  int catalog_number = 0;
  std::vector<double> epoch_jd;
  std::vector<double> altitude_km;
  std::vector<double> bstar;
};

/// Extract plot-ready timelines for specific satellites.
[[nodiscard]] std::vector<TrackTimeline> track_timelines(
    std::span<const SatelliteTrack> tracks, std::span<const int> catalog_numbers);

}  // namespace cosmicdance::core
