file(REMOVE_RECURSE
  "CMakeFiles/ablate_dst_model.dir/ablate_dst_model.cpp.o"
  "CMakeFiles/ablate_dst_model.dir/ablate_dst_model.cpp.o.d"
  "ablate_dst_model"
  "ablate_dst_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_dst_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
