#include "serve/wire.hpp"

#include "common/error.hpp"

namespace cosmicdance::serve {
namespace {

std::uint32_t read_prefix(const std::string& buffer) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < kFramePrefixBytes; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buffer[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ValidationError("frame payload exceeds kMaxFrameBytes");
  }
  std::string out;
  out.reserve(kFramePrefixBytes + payload.size());
  const auto length = static_cast<std::uint32_t>(payload.size());
  for (std::size_t i = 0; i < kFramePrefixBytes; ++i) {
    out.push_back(static_cast<char>((length >> (8 * i)) & 0xFFu));
  }
  out.append(payload);
  return out;
}

void FrameReader::feed(std::string_view bytes) {
  if (error_) return;
  buffer_.append(bytes);
}

std::optional<std::string> FrameReader::next() {
  if (error_ || buffer_.size() < kFramePrefixBytes) return std::nullopt;
  const std::uint32_t length = read_prefix(buffer_);
  if (length > kMaxFrameBytes) {
    error_ = true;
    buffer_.clear();
    return std::nullopt;
  }
  if (buffer_.size() - kFramePrefixBytes < length) return std::nullopt;
  std::string payload = buffer_.substr(kFramePrefixBytes, length);
  buffer_.erase(0, kFramePrefixBytes + length);
  return payload;
}

}  // namespace cosmicdance::serve
