file(REMOVE_RECURSE
  "CMakeFiles/sgp4_deepspace_test.dir/sgp4_deepspace_test.cpp.o"
  "CMakeFiles/sgp4_deepspace_test.dir/sgp4_deepspace_test.cpp.o.d"
  "sgp4_deepspace_test"
  "sgp4_deepspace_test.pdb"
  "sgp4_deepspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp4_deepspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
