file(REMOVE_RECURSE
  "CMakeFiles/orbit_test.dir/orbit_test.cpp.o"
  "CMakeFiles/orbit_test.dir/orbit_test.cpp.o.d"
  "orbit_test"
  "orbit_test.pdb"
  "orbit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orbit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
