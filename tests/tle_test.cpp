#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "timeutil/datetime.hpp"
#include "tle/catalog.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::tle {
namespace {

// The canonical ISS example TLE (checksums valid).
const char* kIssLine1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
const char* kIssLine2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

TEST(ChecksumTest, KnownLines) {
  EXPECT_EQ(checksum(std::string(kIssLine1).substr(0, 68)), 7);
  EXPECT_EQ(checksum(std::string(kIssLine2).substr(0, 68)), 7);
}

TEST(ChecksumTest, MinusCountsAsOne) {
  EXPECT_EQ(checksum("-"), 1);
  EXPECT_EQ(checksum("---"), 3);
  EXPECT_EQ(checksum("12"), 3);
  EXPECT_EQ(checksum("abc XYZ +"), 0);
}

TEST(ParseTest, IssFields) {
  const Tle tle = parse_tle(kIssLine1, kIssLine2);
  EXPECT_EQ(tle.catalog_number, 25544);
  EXPECT_EQ(tle.classification, 'U');
  EXPECT_EQ(tle.international_designator, "98067A");
  EXPECT_NEAR(tle.mean_motion_dot, -0.00002182, 1e-12);
  EXPECT_NEAR(tle.mean_motion_ddot, 0.0, 1e-15);
  EXPECT_NEAR(tle.bstar, -0.11606e-4, 1e-12);
  EXPECT_EQ(tle.ephemeris_type, 0);
  EXPECT_EQ(tle.element_set_number, 292);
  EXPECT_NEAR(tle.inclination_deg, 51.6416, 1e-9);
  EXPECT_NEAR(tle.raan_deg, 247.4627, 1e-9);
  EXPECT_NEAR(tle.eccentricity, 0.0006703, 1e-12);
  EXPECT_NEAR(tle.arg_perigee_deg, 130.5360, 1e-9);
  EXPECT_NEAR(tle.mean_anomaly_deg, 325.0288, 1e-9);
  EXPECT_NEAR(tle.mean_motion_revday, 15.72125391, 1e-8);
  EXPECT_EQ(tle.rev_number, 56353);

  const timeutil::DateTime epoch = tle.epoch_datetime();
  EXPECT_EQ(epoch.year, 2008);
  EXPECT_EQ(epoch.month, 9);
  EXPECT_EQ(epoch.day, 20);
}

TEST(ParseTest, AltitudeFromMeanMotion) {
  const Tle tle = parse_tle(kIssLine1, kIssLine2);
  // ISS at ~15.72 rev/day is roughly 350 km (SMA-derived).
  EXPECT_NEAR(tle.altitude_km(), 350.0, 15.0);
}

TEST(ParseTest, RejectsBadChecksum) {
  std::string corrupted = kIssLine1;
  corrupted[68] = '0';
  EXPECT_THROW(parse_tle(corrupted, kIssLine2), ParseError);
}

TEST(ParseTest, RejectsWrongLength) {
  EXPECT_THROW(parse_tle("1 25544U", kIssLine2), ParseError);
  EXPECT_THROW(parse_tle(std::string(kIssLine1) + " ", kIssLine2), ParseError);
}

TEST(ParseTest, RejectsWrongLineNumber) {
  EXPECT_THROW(parse_tle(kIssLine2, kIssLine1), ParseError);
}

TEST(ParseTest, RejectsCatalogMismatch) {
  // A second valid TLE with a different catalog number.
  Tle other;
  other.catalog_number = 99999;
  other.international_designator = "20001A";
  other.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  other.inclination_deg = 53.0;
  other.mean_motion_revday = 15.06;
  const TleLines lines = format_tle(other);
  EXPECT_THROW(parse_tle(kIssLine1, lines.line2), ParseError);
}

TEST(FormatTest, ProducesValidLines) {
  Tle tle;
  tle.catalog_number = 45766;
  tle.classification = 'U';
  tle.international_designator = "20035K";
  tle.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2023, 3, 24, 6, 30));
  tle.mean_motion_dot = 1.234e-4;
  tle.mean_motion_ddot = 5.4e-11;
  tle.bstar = 3.1415e-4;
  tle.element_set_number = 123;
  tle.inclination_deg = 53.0537;
  tle.raan_deg = 212.1234;
  tle.eccentricity = 0.0001234;
  tle.arg_perigee_deg = 87.9;
  tle.mean_anomaly_deg = 272.15;
  tle.mean_motion_revday = 15.06391234;
  tle.rev_number = 12345;

  const TleLines lines = format_tle(tle);
  EXPECT_EQ(lines.line1.size(), 69u);
  EXPECT_EQ(lines.line2.size(), 69u);
  // Re-parse and compare every field (format <-> parse are inverse maps).
  const Tle back = parse_tle(lines.line1, lines.line2);
  EXPECT_EQ(back.catalog_number, tle.catalog_number);
  EXPECT_EQ(back.international_designator, tle.international_designator);
  EXPECT_NEAR(back.epoch_jd, tle.epoch_jd, 1e-7);
  EXPECT_NEAR(back.mean_motion_dot, tle.mean_motion_dot, 1e-10);
  EXPECT_NEAR(back.mean_motion_ddot, tle.mean_motion_ddot, 1e-15);
  EXPECT_NEAR(back.bstar, tle.bstar, 1e-9);
  EXPECT_NEAR(back.inclination_deg, tle.inclination_deg, 1e-4);
  EXPECT_NEAR(back.raan_deg, tle.raan_deg, 1e-4);
  EXPECT_NEAR(back.eccentricity, tle.eccentricity, 1e-7);
  EXPECT_NEAR(back.arg_perigee_deg, tle.arg_perigee_deg, 1e-4);
  EXPECT_NEAR(back.mean_anomaly_deg, tle.mean_anomaly_deg, 1e-4);
  EXPECT_NEAR(back.mean_motion_revday, tle.mean_motion_revday, 1e-8);
  EXPECT_EQ(back.rev_number, tle.rev_number);
}

TEST(FormatTest, IssByteRoundTrip) {
  // Formatting a parsed record reproduces the canonical lines byte for byte.
  const Tle tle = parse_tle(kIssLine1, kIssLine2);
  const TleLines lines = format_tle(tle);
  EXPECT_EQ(lines.line1, kIssLine1);
  EXPECT_EQ(lines.line2, kIssLine2);
}

TEST(FormatTest, NegativeBstar) {
  Tle tle = parse_tle(kIssLine1, kIssLine2);
  tle.bstar = -4.56e-5;
  const Tle back = [&] {
    const TleLines lines = format_tle(tle);
    return parse_tle(lines.line1, lines.line2);
  }();
  EXPECT_NEAR(back.bstar, -4.56e-5, 1e-10);
}

TEST(FormatTest, ZeroExponentFields) {
  Tle tle = parse_tle(kIssLine1, kIssLine2);
  tle.bstar = 0.0;
  tle.mean_motion_ddot = 0.0;
  tle.mean_motion_dot = 0.0;
  const TleLines lines = format_tle(tle);
  const Tle back = parse_tle(lines.line1, lines.line2);
  EXPECT_DOUBLE_EQ(back.bstar, 0.0);
  EXPECT_DOUBLE_EQ(back.mean_motion_ddot, 0.0);
  EXPECT_DOUBLE_EQ(back.mean_motion_dot, 0.0);
}

TEST(ValidateTest, RejectsOutOfRange) {
  Tle tle = parse_tle(kIssLine1, kIssLine2);
  tle.catalog_number = 0;
  EXPECT_THROW(tle.validate(), ValidationError);
  tle = parse_tle(kIssLine1, kIssLine2);
  tle.eccentricity = 1.5;
  EXPECT_THROW(tle.validate(), ValidationError);
  tle = parse_tle(kIssLine1, kIssLine2);
  tle.inclination_deg = 181.0;
  EXPECT_THROW(tle.validate(), ValidationError);
  tle = parse_tle(kIssLine1, kIssLine2);
  tle.mean_motion_revday = 0.0;
  EXPECT_THROW(tle.validate(), ValidationError);
}

// Exponent-field round trip across magnitudes.
class ExponentFieldSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExponentFieldSweep, BstarRoundTrips) {
  Tle tle = parse_tle(kIssLine1, kIssLine2);
  tle.bstar = GetParam();
  const TleLines lines = format_tle(tle);
  const Tle back = parse_tle(lines.line1, lines.line2);
  if (tle.bstar == 0.0) {
    EXPECT_DOUBLE_EQ(back.bstar, 0.0);
  } else {
    EXPECT_NEAR(back.bstar / tle.bstar, 1.0, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, ExponentFieldSweep,
                         ::testing::Values(0.0, 1e-8, -2.5e-6, 9.99e-4, 1.2e-3,
                                           -7.7e-2, 0.5));

Tle make_tle(int catalog, double jd, double mean_motion = 15.06) {
  Tle tle;
  tle.catalog_number = catalog;
  tle.international_designator = "20001A";
  tle.epoch_jd = jd;
  tle.inclination_deg = 53.0;
  tle.mean_motion_revday = mean_motion;
  tle.bstar = 2e-4;
  return tle;
}

TEST(CatalogTest, AddAndHistorySorted) {
  TleCatalog catalog;
  const double jd0 = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  EXPECT_TRUE(catalog.add(make_tle(100, jd0 + 2.0)));
  EXPECT_TRUE(catalog.add(make_tle(100, jd0)));
  EXPECT_TRUE(catalog.add(make_tle(100, jd0 + 1.0)));
  const auto history = catalog.history(100);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_LT(history[0].epoch_jd, history[1].epoch_jd);
  EXPECT_LT(history[1].epoch_jd, history[2].epoch_jd);
}

TEST(CatalogTest, DuplicateEpochsDropped) {
  TleCatalog catalog;
  const double jd0 = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  EXPECT_TRUE(catalog.add(make_tle(100, jd0)));
  EXPECT_FALSE(catalog.add(make_tle(100, jd0)));
  EXPECT_FALSE(catalog.add(make_tle(100, jd0 + 0.5 / 86400.0)));  // within 1 s
  EXPECT_TRUE(catalog.add(make_tle(100, jd0 + 10.0 / 86400.0)));
  EXPECT_EQ(catalog.record_count(), 2u);
}

TEST(CatalogTest, SeparateSatellites) {
  TleCatalog catalog;
  const double jd0 = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  catalog.add(make_tle(100, jd0));
  catalog.add(make_tle(200, jd0));
  catalog.add(make_tle(100, jd0 + 1.0));
  EXPECT_EQ(catalog.satellite_count(), 2u);
  EXPECT_EQ(catalog.record_count(), 3u);
  EXPECT_EQ(catalog.satellites(), (std::vector<int>{100, 200}));
  EXPECT_EQ(catalog.history(100).size(), 2u);
  EXPECT_TRUE(catalog.history(300).empty());
}

TEST(CatalogTest, EpochBounds) {
  TleCatalog catalog;
  EXPECT_THROW(static_cast<void>(catalog.first_epoch_jd()), ValidationError);
  const double jd0 = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  catalog.add(make_tle(100, jd0 + 5.0));
  catalog.add(make_tle(200, jd0));
  EXPECT_NEAR(catalog.first_epoch_jd(), jd0, 1e-9);
  EXPECT_NEAR(catalog.last_epoch_jd(), jd0 + 5.0, 1e-9);
}

TEST(CatalogTest, TwoLineTextRoundTrip) {
  TleCatalog catalog;
  const double jd0 = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  catalog.add(make_tle(100, jd0));
  catalog.add(make_tle(200, jd0 + 1.0, 15.4));
  const std::string text = catalog.to_text();

  TleCatalog loaded;
  EXPECT_EQ(loaded.add_from_text(text), 2u);
  EXPECT_EQ(loaded.satellite_count(), 2u);
  EXPECT_NEAR(loaded.history(200).front().mean_motion_revday, 15.4, 1e-8);
}

TEST(CatalogTest, ThreeLineFormatWithNames) {
  const std::string text = std::string("STARLINK-TEST\n") + kIssLine1 + "\n" +
                           kIssLine2 + "\n";
  TleCatalog catalog;
  EXPECT_EQ(catalog.add_from_text(text), 1u);
  EXPECT_EQ(catalog.satellites(), (std::vector<int>{25544}));
}

TEST(CatalogTest, DanglingLine1Throws) {
  TleCatalog catalog;
  EXPECT_THROW(catalog.add_from_text(std::string(kIssLine1) + "\n"), ParseError);
}

TEST(CatalogTest, Line2WithoutLine1Throws) {
  TleCatalog catalog;
  EXPECT_THROW(catalog.add_from_text(std::string(kIssLine2) + "\n"), ParseError);
}

TEST(CatalogTest, RefreshIntervals) {
  TleCatalog catalog;
  const double jd0 = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1));
  catalog.add(make_tle(100, jd0));
  catalog.add(make_tle(100, jd0 + 0.5));   // 12 h
  catalog.add(make_tle(100, jd0 + 1.25));  // 18 h
  catalog.add(make_tle(200, jd0));         // no interval (single record... yet)
  const auto intervals = catalog.refresh_intervals_hours();
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_NEAR(intervals[0], 12.0, 1e-9);
  EXPECT_NEAR(intervals[1], 18.0, 1e-9);
}

}  // namespace
}  // namespace cosmicdance::tle
