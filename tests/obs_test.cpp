// cd_obs observability tests: registry semantics, the disabled (nullptr)
// path, exporter shapes, and the determinism contract — work counters from
// a full pipeline run must be bit-identical at every thread count, while
// scheduling counters are explicitly allowed to differ (DESIGN.md §11).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "exec/parallel_for.hpp"
#include "io/csv.hpp"
#include "io/file.hpp"
#include "obs/obs.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"
#include "spaceweather/wdc.hpp"
#include "support/minijson.hpp"
#include "timeutil/datetime.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::obs {
namespace {

TEST(ObsMetricsTest, CountersGaugesAndPhasesSnapshot) {
  Metrics metrics;
  metrics.counter("work.alpha").add(3);
  metrics.counter("work.alpha").add(2);
  metrics.counter("work.beta").add();
  metrics.sched_counter("exec.sections").add(7);
  metrics.set_gauge("threads", 4.0);
  metrics.set_gauge("threads", 8.0);  // last writer wins
  {
    const ScopedPhase phase(&metrics, "phase.one");
  }
  {
    const ScopedPhase phase(&metrics, "phase.one");
  }

  const MetricsReport report = metrics.snapshot();
  EXPECT_EQ(report.counters.at("work.alpha"), 5u);
  EXPECT_EQ(report.counters.at("work.beta"), 1u);
  EXPECT_EQ(report.counters.count("exec.sections"), 0u);  // segregated
  EXPECT_EQ(report.scheduling.at("exec.sections"), 7u);
  EXPECT_DOUBLE_EQ(report.gauges.at("threads"), 8.0);
  ASSERT_EQ(report.phases.count("phase.one"), 1u);
  EXPECT_EQ(report.phases.at("phase.one").calls, 2u);
  EXPECT_GE(report.phases.at("phase.one").total_ms, 0.0);
}

TEST(ObsMetricsTest, NullRegistryIsANoOpEverywhere) {
  // The disabled path: every helper must tolerate nullptr without touching
  // anything (this is what every instrumented call site relies on).
  const ScopedPhase phase(nullptr, "ignored");
  Counter* counter = counter_or_null(nullptr, "ignored");
  EXPECT_EQ(counter, nullptr);
  bump(counter);
  bump(counter, 100);
}

TEST(ObsMetricsTest, CounterHandlesAreStableAndThreadSafe) {
  Metrics metrics;
  Counter& counter = metrics.counter("work.parallel");
  // Concurrent relaxed adds from pool workers must neither race nor lose
  // increments; the handle stays valid across later registry insertions.
  exec::parallel_for(10000, 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) counter.add();
  });
  metrics.counter("work.later").add();  // new node; `counter` must survive
  EXPECT_EQ(counter.value(), 10000u);
  EXPECT_EQ(metrics.snapshot().counters.at("work.parallel"), 10000u);
}

TEST(ObsMetricsTest, JsonExportHasAllSections) {
  Metrics metrics;
  metrics.counter("c.one").add(42);
  metrics.sched_counter("s.one").add(2);
  metrics.set_gauge("g.one", 1.5);
  {
    const ScopedPhase phase(&metrics, "p.one");
  }
  const std::string json = metrics.snapshot().to_json();
  for (const char* needle :
       {"\"counters\"", "\"scheduling\"", "\"gauges\"", "\"phases\"",
        "\"c.one\": 42", "\"s.one\": 2", "\"g.one\"", "\"p.one\"",
        "\"calls\": 1", "\"wall_ms\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }
  // Structural sanity: braces balance (cheap well-formedness check without
  // a JSON parser; the tier-1 smoke pass validates with a real one).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsMetricsTest, MetricRowsShape) {
  Metrics metrics;
  metrics.counter("c.one").add(1);
  metrics.sched_counter("s.one").add(2);
  metrics.set_gauge("g.one", 3.0);
  {
    const ScopedPhase phase(&metrics, "p.one");
  }
  const auto rows = metrics.snapshot().metric_rows();
  // Header + counter + sched + gauge + (calls, wall_ms) per phase.
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"kind", "name", "value"}));
  for (std::size_t r = 1; r < rows.size(); ++r) {
    ASSERT_EQ(rows[r].size(), 3u) << "row " << r;
  }
  EXPECT_EQ(rows[1][0], "counter");
  EXPECT_EQ(rows[1][1], "c.one");
  EXPECT_EQ(rows[1][2], "1");
}

TEST(ObsMetricsTest, TraceJsonEmitsCompleteEvents) {
  Metrics metrics;
  {
    const ScopedPhase phase(&metrics, "traced.work");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string trace = metrics.trace_json();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"traced.work\""), std::string::npos);
  EXPECT_NE(trace.find("\"dur\""), std::string::npos);
}

TEST(ObsMetricsTest, RecordPhaseAccumulatesExternallyTimedIntervals) {
  Metrics metrics;
  const auto begin = std::chrono::steady_clock::now();
  const auto end = begin + std::chrono::milliseconds(5);
  metrics.record_phase("external", begin, end);
  metrics.record_phase("external", begin, end);
  const MetricsReport report = metrics.snapshot();
  EXPECT_EQ(report.phases.at("external").calls, 2u);
  EXPECT_NEAR(report.phases.at("external").total_ms, 10.0, 0.1);
}

// ---- the determinism contract, end to end ---------------------------------

TEST(ObsDeterminismTest, PipelineWorkCountersBitIdenticalAcrossThreadCounts) {
  const auto dst = spaceweather::DstGenerator(
                       spaceweather::DstGenerator::paper_window_2020_2024())
                       .generate();
  const auto catalog =
      simulation::ConstellationSimulator(
          simulation::scenario::paper_window(&dst, 2, 30.0))
          .run()
          .catalog;

  std::vector<MetricsReport> reports;
  for (const int threads : {1, 2, 8}) {
    Metrics metrics;
    core::PipelineConfig config;
    config.num_threads = threads;
    config.metrics = &metrics;
    const core::CosmicDance pipeline(dst, catalog, config);
    const double p95 = pipeline.dst_threshold_at_percentile(95.0);
    static_cast<void>(pipeline.altitude_changes_for_storms(p95));
    static_cast<void>(pipeline.drag_changes_for_storms(p95));
    const auto epochs = pipeline.correlator().storm_event_epochs(p95);
    if (!epochs.empty()) {
      static_cast<void>(pipeline.post_event_envelope(
          epochs.front(), 30, core::EnvelopeSelection::kAll));
    }
    reports.push_back(metrics.snapshot());
  }

  ASSERT_FALSE(reports[0].counters.empty());
  EXPECT_GT(reports[0].counters.at("track.built"), 0u);
  EXPECT_GT(reports[0].counters.at("correlator.cells"), 0u);
  // Work counters: the contract — exact map equality (names AND totals).
  EXPECT_EQ(reports[0].counters, reports[1].counters) << "threads 1 vs 2";
  EXPECT_EQ(reports[0].counters, reports[2].counters) << "threads 1 vs 8";
  // Scheduling counters exist but are outside the contract: the parallel
  // runs must have recorded sections without being compared for equality.
  for (const MetricsReport& report : reports) {
    EXPECT_GT(report.scheduling.at("exec.sections"), 0u);
    EXPECT_GT(report.scheduling.at("exec.chunks"), 0u);
  }
}

TEST(ObsDeterminismTest, DeltaPathCountersArePinnedAndBitIdenticalAcrossThreadCounts) {
  // The incremental-ingestion counters (DESIGN.md §14) are part of the
  // public telemetry surface: tier-1's bench gate and downstream dashboards
  // key on the literal names `ingest.delta_hit` and `ingest.tail_bytes`,
  // and the determinism contract (§11) extends to the delta path — the
  // whole work-counter map from a tail parse must be bit-identical at every
  // thread count.
  const auto record_text = [](int catalog_number, double epoch_offset_days) {
    tle::Tle record;
    record.catalog_number = catalog_number;
    record.international_designator = "20001A";
    record.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2024, 5, 1)) +
                      epoch_offset_days;
    record.bstar = 1.4e-4;
    record.inclination_deg = 53.05;
    record.raan_deg = 120.5;
    record.eccentricity = 0.0002;
    record.arg_perigee_deg = 90.0;
    record.mean_anomaly_deg = 45.0;
    record.mean_motion_revday = 15.05;
    record.element_set_number = 1;
    record.rev_number = 1;
    const tle::TleLines lines = tle::format_tle(record);
    return lines.line1 + "\n" + lines.line2 + "\n";
  };
  std::vector<double> hours;
  for (int h = 0; h < 3 * 24; ++h) hours.push_back(-10.0 - h % 40);
  const std::string wdc_text = spaceweather::to_wdc(
      spaceweather::DstIndex(timeutil::make_datetime(2024, 5, 1), hours));
  std::string seed_tle;
  for (int i = 0; i < 12; ++i) seed_tle += record_text(40001 + i, 0.25 * i);
  std::string tail_tle;
  for (int i = 0; i < 40; ++i) tail_tle += record_text(40001 + i % 12, 30.0 + 0.25 * i);

  std::vector<MetricsReport> reports;
  for (const int threads : {1, 2, 8}) {
    const std::string dir =
        ::testing::TempDir() + "cd_obs_delta_" + std::to_string(threads);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string dst_path = dir + "/dst.wdc";
    const std::string tle_path = dir + "/catalog.tle";
    io::write_file(dst_path, wdc_text);
    io::write_file(tle_path, seed_tle);

    core::PipelineConfig config;
    config.num_threads = threads;
    config.cache_dir = dir + "/cache";
    static_cast<void>(core::CosmicDance::from_files(dst_path, tle_path, config));

    io::append_file(tle_path, tail_tle);
    Metrics metrics;
    config.metrics = &metrics;
    static_cast<void>(core::CosmicDance::from_files(dst_path, tle_path, config));
    reports.push_back(metrics.snapshot());
  }

  // Name pinning: these exact strings are load-bearing.
  EXPECT_EQ(reports[0].counters.at("ingest.delta_hit"), 1u);
  EXPECT_EQ(reports[0].counters.at("ingest.tail_bytes"), tail_tle.size());
  EXPECT_EQ(reports[0].counters.at("snapshot.delta_written"), 1u);
  EXPECT_EQ(reports[0].counters.at("tle.records_parsed"), 40u);
  EXPECT_EQ(reports[0].counters.count("ingest.cache_hit"), 0u);
  // Bit-identity of the whole work-counter map across thread counts.
  EXPECT_EQ(reports[0].counters, reports[1].counters) << "threads 1 vs 2";
  EXPECT_EQ(reports[0].counters, reports[2].counters) << "threads 1 vs 8";
}

// --- exporter escaping: hostile metric names must survive every format ------

TEST(ObsExporterEscapingTest, ToJsonSurvivesHostileNames) {
  const std::string quote_name = "he said \"hi\"";
  const std::string slash_name = "back\\slash\\";
  const std::string ctrl_name = "ctrl\x01\x02 bell\x07";
  const std::string multiline_name = "line\nbreak\rreturn\ttab";

  Metrics metrics;
  metrics.counter(quote_name).add(1);
  metrics.counter(slash_name).add(2);
  metrics.set_gauge(ctrl_name, 4.5);
  const auto begin = std::chrono::steady_clock::now();
  metrics.record_phase(multiline_name, begin,
                       begin + std::chrono::milliseconds(1));

  const std::string json = metrics.snapshot().to_json();
  const auto doc = minijson::parse(json);
  ASSERT_TRUE(doc.has_value()) << "to_json emitted invalid JSON:\n" << json;

  const minijson::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find(quote_name), nullptr) << "quote name lost";
  EXPECT_NE(counters->find(slash_name), nullptr) << "backslash name lost";
  const minijson::Value* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find(ctrl_name), nullptr) << "control-char name lost";
  const minijson::Value* phases = doc->find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_NE(phases->find(multiline_name), nullptr) << "newline name lost";
}

TEST(ObsExporterEscapingTest, TraceJsonSurvivesHostileSpanNames) {
  const std::string hostile = "span \"x\"\\\n\x1f end";
  Metrics metrics;
  const auto begin = std::chrono::steady_clock::now();
  metrics.record_phase(hostile, begin, begin + std::chrono::milliseconds(2));

  const std::string trace = metrics.trace_json();
  const auto doc = minijson::parse(trace);
  ASSERT_TRUE(doc.has_value()) << "trace_json emitted invalid JSON:\n"
                               << trace;
  const minijson::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, minijson::Value::Kind::kArray);
  bool found = false;
  for (const minijson::Value& event : events->items) {
    const minijson::Value* name = event.find("name");
    if (name != nullptr && name->text == hostile) found = true;
  }
  EXPECT_TRUE(found) << "hostile span name did not round-trip";
}

TEST(ObsExporterEscapingTest, MetricRowsCsvRoundTripSurvivesHostileNames) {
  MetricsReport report;
  report.counters["with,comma"] = 1;
  report.counters["with \"quote\""] = 2;
  report.counters["with\nnewline"] = 3;
  // The CR cases are the regression: an unquoted trailing \r is eaten by
  // CRLF normalization on read, and a quoted "\r\n" used to lose its \r.
  report.counters["with\rreturn"] = 4;
  report.counters["trailing return\r"] = 5;
  report.counters["crlf\r\ninside"] = 6;
  report.gauges["plain"] = 7.0;

  const std::vector<io::CsvRow> rows = report.metric_rows();
  std::string text;
  for (const io::CsvRow& row : rows) {
    text += io::format_csv_row(row) + "\n";
  }
  std::istringstream in(text);
  const std::vector<io::CsvRow> parsed = io::read_csv(in);
  ASSERT_EQ(parsed.size(), rows.size());
  EXPECT_EQ(parsed, rows);
}

}  // namespace
}  // namespace cosmicdance::obs
