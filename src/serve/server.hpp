// The cosmicdanced transport: a small POSIX TCP server speaking the
// length-prefixed JSON protocol (wire.hpp), one thread per connection, and
// the matching blocking client.
//
// The server owns no query logic — every complete frame is handed to the
// Service (service.hpp) and the response framed back.  Connections are
// independent: each gets its own FrameReader, so partial writes and
// pipelined requests on one socket never affect another.  A framing error
// (oversized length prefix) gets one final error frame, then the connection
// closes — there is no way to resynchronise a byte-exact stream.
//
// Lifecycle: construct → start() binds/listens (port 0 picks an ephemeral
// port, readable via port()) → wait() blocks until a client sends the
// "shutdown" op or shutdown() is called → shutdown() closes the listener,
// unblocks every in-flight connection and joins all threads.  shutdown() is
// idempotent and also runs from the destructor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace cosmicdance::serve {

class Server {
 public:
  /// `service` is non-owning and must outlive the server.  `port` 0 binds
  /// an ephemeral port.  Nothing is bound until start().
  Server(Service& service, std::string host, std::uint16_t port);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and launch the accept thread.  Throws IoError when the
  /// address cannot be bound.
  void start();

  /// The actual bound port (resolves port-0 binds).  Valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Block until a client requests shutdown or shutdown() is called.
  void wait();

  /// Stop accepting, unblock and join every connection, join the accept
  /// thread.  Safe to call repeatedly and from the destructor; must not be
  /// called from a connection thread (it joins them).
  void shutdown();

 private:
  void accept_loop();
  void serve_connection(int fd);
  void request_shutdown();

  Service& service_;
  std::string host_;
  std::uint16_t requested_port_;
  std::uint16_t port_ = 0;
  /// Atomic: the accept loop reads it while shutdown() retires it (the
  /// exchange also makes the close-once idempotent across callers).
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  std::set<int> open_fds_;              ///< live connection sockets
  std::vector<std::thread> workers_;    ///< joined by shutdown()
};

/// Minimal blocking client for tools and tests: one request frame out, one
/// response frame back.  Not thread-safe; use one per thread.
class Client {
 public:
  /// Connects immediately; throws IoError on failure.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one payload and block for the matching response payload.  Throws
  /// IoError on connection loss or a framing violation from the server.
  [[nodiscard]] std::string request(std::string_view payload);

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace cosmicdance::serve
