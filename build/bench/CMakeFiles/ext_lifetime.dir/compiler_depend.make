# Empty compiler generated dependencies file for ext_lifetime.
# This may be replaced when dependencies are built.
