file(REMOVE_RECURSE
  "CMakeFiles/fig04_storm_vs_quiet.dir/fig04_storm_vs_quiet.cpp.o"
  "CMakeFiles/fig04_storm_vs_quiet.dir/fig04_storm_vs_quiet.cpp.o.d"
  "fig04_storm_vs_quiet"
  "fig04_storm_vs_quiet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_storm_vs_quiet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
