# Empty dependencies file for cosmicdance.
# This may be replaced when dependencies are built.
