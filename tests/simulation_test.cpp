#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "simulation/constellation.hpp"
#include "simulation/launch_plan.hpp"
#include "simulation/satellite.hpp"
#include "simulation/scenario.hpp"
#include "simulation/tracking.hpp"
#include "spaceweather/generator.hpp"
#include "stats/descriptive.hpp"

namespace cosmicdance::simulation {
namespace {

using timeutil::make_datetime;

TEST(SatelliteTest, ModeNames) {
  EXPECT_EQ(to_string(SatelliteMode::kStaging), "staging");
  EXPECT_EQ(to_string(SatelliteMode::kReentered), "reentered");
}

TEST(SatelliteTest, UncontrolledModes) {
  EXPECT_TRUE(is_uncontrolled(SatelliteMode::kOutage));
  EXPECT_TRUE(is_uncontrolled(SatelliteMode::kDecaying));
  EXPECT_FALSE(is_uncontrolled(SatelliteMode::kOperational));
  EXPECT_FALSE(is_uncontrolled(SatelliteMode::kDeorbiting));
}

TEST(SatelliteTest, BallisticByMode) {
  SatelliteState satellite;
  satellite.mode = SatelliteMode::kOperational;
  EXPECT_DOUBLE_EQ(satellite.ballistic_m2_kg(),
                   satellite.config.ballistic_operational);
  satellite.mode = SatelliteMode::kOutage;
  EXPECT_DOUBLE_EQ(satellite.ballistic_m2_kg(),
                   satellite.config.ballistic_uncontrolled);
  satellite.mode = SatelliteMode::kStaging;
  EXPECT_DOUBLE_EQ(satellite.ballistic_m2_kg(), satellite.config.ballistic_staging);
}

TEST(SatelliteTest, J2Rates) {
  // Starlink shell: RAAN regresses ~ -4.6 deg/day; argp advances.
  EXPECT_NEAR(raan_rate_deg_per_day(550.0, 53.0), -4.6, 0.4);
  EXPECT_GT(argp_rate_deg_per_day(550.0, 53.0), 2.0);
  // Retrograde orbit: RAAN advances.
  EXPECT_GT(raan_rate_deg_per_day(550.0, 97.6), 0.0);
  // Polar: no RAAN drift.
  EXPECT_NEAR(raan_rate_deg_per_day(550.0, 90.0), 0.0, 1e-9);
}

TEST(LaunchPlanTest, CadenceAndCount) {
  const auto plan = starlink_like_plan(make_datetime(2020, 1, 1),
                                       make_datetime(2020, 3, 1), 10.0, 20);
  ASSERT_GE(plan.size(), 6u);
  EXPECT_EQ(plan.front().count, 20);
  EXPECT_NEAR(timeutil::hours_between(plan[0].time, plan[1].time), 240.0, 1e-6);
  // Planes spread in RAAN.
  EXPECT_NE(plan[0].raan_deg, plan[1].raan_deg);
}

TEST(LaunchPlanTest, Validation) {
  EXPECT_THROW(starlink_like_plan(make_datetime(2020, 1, 1),
                                  make_datetime(2020, 2, 1), 0.0, 10),
               ValidationError);
  EXPECT_THROW(starlink_like_plan(make_datetime(2020, 1, 1),
                                  make_datetime(2020, 2, 1), 10.0, 0),
               ValidationError);
  EXPECT_THROW(starlink_like_plan(make_datetime(2020, 2, 1),
                                  make_datetime(2020, 1, 1), 10.0, 10),
               ValidationError);
}

TEST(TrackingTest, RefreshIntervalsMatchPaperStatistics) {
  TrackingSimulator tracker({}, 42);
  std::vector<double> intervals;
  double jd = 2460000.0;
  for (int i = 0; i < 5000; ++i) {
    const double next = tracker.next_observation_jd(jd);
    intervals.push_back((next - jd) * 24.0);
    jd = next;
  }
  const auto s = stats::summarize(intervals);
  // Paper: between <1 h and 154 h, mean ~12 h.
  EXPECT_GE(s.min, 0.5);
  EXPECT_LE(s.max, 154.0);
  EXPECT_NEAR(s.mean, 12.0, 2.5);
}

SatelliteState operational_state() {
  SatelliteState satellite;
  satellite.catalog_number = 45001;
  satellite.international_designator = "20001A";
  satellite.mode = SatelliteMode::kOperational;
  satellite.altitude_km = 550.0;
  satellite.raan_deg = 123.0;
  satellite.arg_perigee_deg = 45.0;
  satellite.mean_anomaly_deg = 10.0;
  satellite.launch_jd = 2458800.0;
  return satellite;
}

TEST(TrackingTest, ObservationNearTruth) {
  TrackingConfig config;
  config.gross_error_probability = 0.0;
  TrackingSimulator tracker(config, 7);
  const SatelliteState satellite = operational_state();
  std::vector<double> altitude_errors;
  for (int i = 0; i < 500; ++i) {
    const tle::Tle obs = tracker.observe(satellite, 2460000.0 + i, 1.0, -0.01);
    altitude_errors.push_back(obs.altitude_km() - satellite.altitude_km);
    EXPECT_EQ(obs.catalog_number, 45001);
    EXPECT_NEAR(obs.inclination_deg, satellite.config.inclination_deg, 0.02);
  }
  EXPECT_NEAR(stats::mean(altitude_errors), 0.0, 0.01);
  EXPECT_NEAR(stats::stddev(altitude_errors), config.altitude_noise_km, 0.01);
}

TEST(TrackingTest, GrossErrorsProduceLongTail) {
  TrackingConfig config;
  config.gross_error_probability = 0.05;  // inflated for the test
  TrackingSimulator tracker(config, 11);
  const SatelliteState satellite = operational_state();
  int gross = 0;
  double worst = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double alt = tracker.observe(satellite, 2460000.0 + i, 1.0, 0.0).altitude_km();
    if (alt > 650.0) {
      ++gross;
      worst = std::max(worst, alt);
    }
  }
  EXPECT_NEAR(gross / 4000.0, 0.05, 0.02);
  EXPECT_GT(worst, 5000.0);  // the Fig 10a tail reaches tens of thousands km
}

TEST(TrackingTest, BstarReflectsDensityRatio) {
  TrackingConfig config;
  config.bstar_lognormal_sigma = 0.0;
  config.gross_error_probability = 0.0;
  TrackingSimulator tracker(config, 13);
  const SatelliteState satellite = operational_state();
  const double quiet = tracker.observe(satellite, 2460000.0, 1.0, 0.0).bstar;
  const double storm = tracker.observe(satellite, 2460000.1, 5.0, 0.0).bstar;
  EXPECT_NEAR(storm / quiet, 5.0, 1e-9);
}

TEST(TrackingTest, EmittedTleSerializes) {
  TrackingSimulator tracker({}, 17);
  const SatelliteState satellite = operational_state();
  const tle::Tle obs = tracker.observe(satellite, 2460000.0, 1.5, -0.05);
  const tle::TleLines lines = tle::format_tle(obs);
  const tle::Tle back = tle::parse_tle(lines.line1, lines.line2);
  EXPECT_EQ(back.catalog_number, obs.catalog_number);
  EXPECT_NEAR(back.mean_motion_revday, obs.mean_motion_revday, 1e-7);
}

ConstellationConfig small_config(const spaceweather::DstIndex* dst) {
  ConstellationConfig config;
  config.seed = 5;
  config.start = make_datetime(2023, 1, 1);
  config.end = make_datetime(2023, 7, 1);
  config.dst = dst;
  LaunchBatch batch;
  batch.time = config.start;
  batch.count = 30;
  batch.prelaunched = true;
  config.launches.push_back(batch);
  return config;
}

TEST(ConstellationTest, QuietRunKeepsFleetStable) {
  ConstellationConfig config = small_config(nullptr);
  config.failures.enabled = false;
  SimulationResult result = ConstellationSimulator(config).run();
  EXPECT_EQ(result.launched, 30);
  EXPECT_EQ(result.reentered, 0);
  EXPECT_EQ(result.tracked_at_end, 30);
  EXPECT_TRUE(result.failures.empty());
  // Every satellite stays near the shell.
  for (const int id : result.catalog.satellites()) {
    for (const tle::Tle& tle : result.catalog.history(id)) {
      if (tle.altitude_km() < 650.0) {  // skip gross tracking errors
        EXPECT_NEAR(tle.altitude_km(), 550.0, 6.0);
      }
    }
  }
}

TEST(ConstellationTest, DeterministicForSeed) {
  const ConstellationConfig config = small_config(nullptr);
  SimulationResult a = ConstellationSimulator(config).run();
  SimulationResult b = ConstellationSimulator(config).run();
  EXPECT_EQ(a.catalog.record_count(), b.catalog.record_count());
  EXPECT_EQ(a.catalog.to_text(), b.catalog.to_text());
}

TEST(ConstellationTest, LifecycleReachesOperationalShell) {
  ConstellationConfig config;
  config.seed = 6;
  config.start = make_datetime(2023, 1, 1);
  config.end = make_datetime(2023, 12, 1);
  config.failures.enabled = false;
  config.record_truth = true;
  LaunchBatch batch;
  batch.time = config.start;
  batch.count = 5;
  batch.staging_days = 30.0;
  config.launches.push_back(batch);
  SimulationResult result = ConstellationSimulator(config).run();
  ASSERT_EQ(result.truth.size(), 5u);
  for (const auto& [id, samples] : result.truth) {
    EXPECT_NEAR(samples.front().altitude_km, 350.0, 10.0);
    EXPECT_NEAR(samples.back().altitude_km, 550.0, 3.0);
    EXPECT_EQ(samples.back().mode, SatelliteMode::kOperational);
  }
}

TEST(ConstellationTest, ForcedPermanentDecayReachesReentry) {
  ConstellationConfig config = small_config(nullptr);
  config.end = make_datetime(2024, 6, 1);  // long enough to spiral in
  config.failures.enabled = false;
  config.record_truth = true;
  config.forced_failures.push_back(
      {config.first_catalog_number, make_datetime(2023, 2, 1),
       FailureKind::kPermanentDecay, 0.0});
  SimulationResult result = ConstellationSimulator(config).run();
  EXPECT_EQ(result.reentered, 1);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].catalog_number, config.first_catalog_number);
  // The doomed satellite's truth altitude decreases monotonically-ish.
  const auto& truth = result.truth.at(config.first_catalog_number);
  EXPECT_LT(truth.back().altitude_km, 360.0);
}

TEST(ConstellationTest, ForcedOutageRecovers) {
  ConstellationConfig config = small_config(nullptr);
  config.failures.enabled = false;
  config.failures.retarget_probability = 0.0;
  config.record_truth = true;
  config.forced_failures.push_back(
      {config.first_catalog_number + 1, make_datetime(2023, 2, 1),
       FailureKind::kTemporaryOutage, 20.0});
  SimulationResult result = ConstellationSimulator(config).run();
  EXPECT_EQ(result.reentered, 0);
  const auto& truth = result.truth.at(config.first_catalog_number + 1);
  double min_altitude = 1000.0;
  for (const TruthSample& s : truth) min_altitude = std::min(min_altitude, s.altitude_km);
  EXPECT_LT(min_altitude, 545.0);                       // dipped during outage
  EXPECT_NEAR(truth.back().altitude_km, 550.0, 3.0);    // recovered
}

TEST(ConstellationTest, StormDrivesUpsetsQuietDoesNot) {
  // A scripted deep storm against the same fleet: failures only with storm.
  spaceweather::DstGeneratorConfig dst_config;
  dst_config.start = make_datetime(2023, 1, 1);
  dst_config.hours = 24 * 180;
  dst_config.include_random_storms = false;
  dst_config.scripted_storms.push_back(
      {make_datetime(2023, 3, 1, 6), -220.0, 4.0, 3.0, 10.0});
  const spaceweather::DstIndex dst =
      spaceweather::DstGenerator(dst_config).generate();

  ConstellationConfig stormy = small_config(&dst);
  stormy.launches[0].count = 200;
  SimulationResult with_storm = ConstellationSimulator(stormy).run();
  EXPECT_GT(with_storm.failures.size(), 0u);
  for (const FailureRecord& f : with_storm.failures) {
    // Every upset happens during/after the storm onset, never before.
    EXPECT_GE(f.jd, timeutil::to_julian(make_datetime(2023, 3, 1)));
  }

  ConstellationConfig calm = small_config(nullptr);
  calm.launches[0].count = 200;
  EXPECT_TRUE(ConstellationSimulator(calm).run().failures.empty());
}

TEST(ConstellationTest, ProactiveResponseSuppressesUpsets) {
  spaceweather::DstGeneratorConfig dst_config;
  dst_config.start = make_datetime(2023, 1, 1);
  dst_config.hours = 24 * 90;
  dst_config.include_random_storms = false;
  dst_config.scripted_storms.push_back(
      {make_datetime(2023, 2, 1, 6), -400.0, 4.0, 6.0, 10.0});
  const spaceweather::DstIndex dst =
      spaceweather::DstGenerator(dst_config).generate();

  ConstellationConfig exposed = small_config(&dst);
  exposed.launches[0].count = 400;
  const auto unprotected = ConstellationSimulator(exposed).run().failures.size();

  ConstellationConfig protected_config = small_config(&dst);
  protected_config.launches[0].count = 400;
  protected_config.failures.proactive_response = true;
  const auto mitigated =
      ConstellationSimulator(protected_config).run().failures.size();
  EXPECT_LT(static_cast<double>(mitigated),
            0.5 * static_cast<double>(unprotected) + 2.0);
}

TEST(ConstellationTest, RejectsBadConfig) {
  ConstellationConfig config;
  config.step_hours = 0.0;
  EXPECT_THROW(ConstellationSimulator{config}, ValidationError);
  config = ConstellationConfig{};
  config.start = make_datetime(2024, 1, 1);
  config.end = make_datetime(2023, 1, 1);
  EXPECT_THROW(ConstellationSimulator{config}, ValidationError);
}

TEST(ScenarioTest, Figure3PinsCatalogNumbers) {
  const auto config = scenario::figure3(nullptr);
  SimulationResult result = ConstellationSimulator(config).run();
  const auto sats = result.catalog.satellites();
  EXPECT_EQ(sats, (std::vector<int>{44943, 45400, 45766}));
  EXPECT_EQ(result.failures.size(), 3u);
}

TEST(ScenarioTest, LaunchL1FollowsPaperTimeline) {
  const auto config = scenario::launch_l1(nullptr);
  SimulationResult result = ConstellationSimulator(config).run();
  EXPECT_EQ(result.launched, 43);
  EXPECT_EQ(result.catalog.satellites().front(), 44713);
  // Staging at ~360 km early, operational 550 km by end (Fig 9).
  const auto& truth = result.truth.at(44713);
  EXPECT_NEAR(truth.front().altitude_km, 360.0, 10.0);
  EXPECT_NEAR(truth.back().altitude_km, 550.0, 3.0);
}

TEST(ScenarioTest, May2024FleetSplitAcrossShells) {
  const auto config = scenario::may_2024(nullptr, 300);
  ASSERT_EQ(config.launches.size(), 3u);
  EXPECT_TRUE(config.failures.proactive_response);
  SimulationResult result = ConstellationSimulator(config).run();
  EXPECT_EQ(result.launched, 300);
  EXPECT_EQ(result.tracked_at_end, 300);
}

}  // namespace
}  // namespace cosmicdance::simulation
