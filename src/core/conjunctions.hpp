// Conjunction screening from TLE pairs (paper §A.2: "satellite operators
// use these TLEs to ... assess the collision probability in advance").
//
// Coarse-scan + refine search for close approaches between two SGP4
// trajectories — the concrete realisation of what shell trespassing means
// for collision risk.
#pragma once

#include <optional>
#include <vector>

#include "core/track.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::core {

/// One close approach between two objects.
struct Conjunction {
  int catalog_a = 0;
  int catalog_b = 0;
  double jd = 0.0;
  double distance_km = 0.0;
};

struct ConjunctionConfig {
  /// Report approaches closer than this (LEO screening thresholds are
  /// typically 5-10 km for alerting).
  double threshold_km = 10.0;
  /// Coarse scan step.  Must under-sample the relative-motion period; 30 s
  /// resolves the ~5-10 km/s closing speeds at LEO to ~km scale before
  /// refinement.
  double coarse_step_seconds = 30.0;
};

/// Minimum distance between two propagated TLEs over [jd_start, jd_start +
/// days], found by coarse scan plus ternary refinement of the best bracket.
/// Returns nullopt when either object fails to propagate anywhere in the
/// window (e.g. decays).
[[nodiscard]] std::optional<Conjunction> closest_approach(
    const tle::Tle& a, const tle::Tle& b, double jd_start, double days,
    const ConjunctionConfig& config = {});

/// Screen one object against a set: all approaches below the threshold,
/// sorted by distance.  Objects that fail to propagate are skipped.
[[nodiscard]] std::vector<Conjunction> screen_against(
    const tle::Tle& object, std::span<const tle::Tle> others, double jd_start,
    double days, const ConjunctionConfig& config = {});

}  // namespace cosmicdance::core
