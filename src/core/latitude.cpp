#include "core/latitude.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "orbit/frames.hpp"
#include "sgp4/sgp4.hpp"
#include "stats/descriptive.hpp"

namespace cosmicdance::core {

tle::Tle tle_from_sample(int catalog_number, const TrajectorySample& sample) {
  tle::Tle record;
  record.catalog_number = catalog_number;
  record.international_designator = "00000A";  // not carried by samples
  record.epoch_jd = sample.epoch_jd;
  record.inclination_deg = sample.inclination_deg;
  record.raan_deg = sample.raan_deg;
  record.eccentricity = sample.eccentricity;
  record.arg_perigee_deg = sample.arg_perigee_deg;
  record.mean_anomaly_deg = sample.mean_anomaly_deg;
  record.mean_motion_revday = sample.mean_motion_revday;
  record.bstar = sample.bstar;
  return record;
}

double sample_latitude_deg(int catalog_number, const TrajectorySample& sample) {
  const sgp4::Sgp4Propagator propagator(tle_from_sample(catalog_number, sample));
  const orbit::StateVector sv = propagator.propagate_minutes(0.0);
  const orbit::Vec3 ecef = orbit::teme_to_ecef(sv.position_km, sample.epoch_jd);
  const orbit::Geodetic geo = orbit::ecef_to_geodetic(ecef);
  return std::fabs(units::rad2deg(geo.latitude_rad));
}

std::vector<LatitudeBandStats> latitude_band_drag(
    std::span<const SatelliteTrack> tracks, double jd_lo, double jd_hi,
    int bands) {
  if (bands < 1) throw ValidationError("latitude bands must be >= 1");
  const double width = 90.0 / bands;
  std::vector<std::vector<double>> bstars(static_cast<std::size_t>(bands));
  std::size_t total = 0;

  for (const SatelliteTrack& track : tracks) {
    for (const TrajectorySample& sample : track.between(jd_lo, jd_hi)) {
      double latitude = 0.0;
      try {
        latitude = sample_latitude_deg(track.catalog_number(), sample);
      } catch (const Error&) {
        continue;  // gross tracking error / unpropagatable record
      }
      auto band = static_cast<std::size_t>(latitude / width);
      if (band >= bstars.size()) band = bstars.size() - 1;
      bstars[band].push_back(sample.bstar);
      ++total;
    }
  }

  std::vector<LatitudeBandStats> out;
  out.reserve(static_cast<std::size_t>(bands));
  for (int b = 0; b < bands; ++b) {
    LatitudeBandStats stats;
    stats.lat_lo_deg = b * width;
    stats.lat_hi_deg = (b + 1) * width;
    const auto& samples = bstars[static_cast<std::size_t>(b)];
    stats.samples = samples.size();
    stats.dwell_fraction =
        total == 0 ? 0.0
                   : static_cast<double>(samples.size()) / static_cast<double>(total);
    if (!samples.empty()) {
      stats.median_bstar = stats::median(samples);
      stats.p95_bstar = stats::percentile(samples, 95.0);
    }
    out.push_back(stats);
  }
  return out;
}

}  // namespace cosmicdance::core
