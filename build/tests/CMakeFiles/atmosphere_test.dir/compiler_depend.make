# Empty compiler generated dependencies file for atmosphere_test.
# This may be replaced when dependencies are built.
