// Microbenchmarks: SGP4 initialisation/propagation and TLE parse/format —
// the per-record costs that dominate ingesting a multi-million-record
// archive.
#include <benchmark/benchmark.h>

#include "sgp4/sgp4.hpp"
#include "timeutil/datetime.hpp"
#include "tle/tle.hpp"

namespace {

using namespace cosmicdance;

tle::Tle starlink_tle() {
  tle::Tle t;
  t.catalog_number = 45000;
  t.international_designator = "20001A";
  t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1, 12));
  t.inclination_deg = 53.05;
  t.raan_deg = 100.0;
  t.eccentricity = 1.0e-4;
  t.arg_perigee_deg = 90.0;
  t.mean_anomaly_deg = 270.0;
  t.mean_motion_revday = 15.06;
  t.bstar = 2.0e-4;
  return t;
}

tle::Tle geo_tle() {
  tle::Tle t = starlink_tle();
  t.mean_motion_revday = 1.00273896;
  t.inclination_deg = 0.5;
  t.eccentricity = 3.0e-4;
  t.bstar = 0.0;
  return t;
}

void BM_Sgp4Init(benchmark::State& state) {
  const tle::Tle t = starlink_tle();
  for (auto _ : state) {
    sgp4::Sgp4Propagator propagator(t);
    benchmark::DoNotOptimize(propagator.recovered_altitude_km());
  }
}
BENCHMARK(BM_Sgp4Init);

void BM_Sgp4PropagateNearEarth(benchmark::State& state) {
  const sgp4::Sgp4Propagator propagator(starlink_tle());
  double tsince = 0.0;
  orbit::StateVector out;
  for (auto _ : state) {
    tsince += 1.0;
    benchmark::DoNotOptimize(propagator.try_propagate_minutes(tsince, out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Sgp4PropagateNearEarth);

void BM_Sgp4PropagateDeepSpace(benchmark::State& state) {
  const sgp4::Sgp4Propagator propagator(geo_tle());
  double tsince = 0.0;
  orbit::StateVector out;
  for (auto _ : state) {
    tsince += 1.0;
    benchmark::DoNotOptimize(propagator.try_propagate_minutes(tsince, out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Sgp4PropagateDeepSpace);

void BM_TleFormat(benchmark::State& state) {
  const tle::Tle t = starlink_tle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tle::format_tle(t));
  }
}
BENCHMARK(BM_TleFormat);

void BM_TleParse(benchmark::State& state) {
  const tle::TleLines lines = tle::format_tle(starlink_tle());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tle::parse_tle(lines.line1, lines.line2));
  }
}
BENCHMARK(BM_TleParse);

}  // namespace
