// Simulated ground tracking network: turns ground-truth satellite states
// into noisy TLE records at realistic refresh intervals.
//
// This is the observability boundary of the whole reproduction: the
// measurement pipeline (cd_core) consumes only what this emits, never the
// simulator's ground truth — exactly as CosmicDance consumes CSpOC TLEs.
#pragma once

#include "common/rng.hpp"
#include "simulation/satellite.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::simulation {

struct TrackingConfig {
  /// Refresh intervals are log-normal: exp(N(mu, sigma)) hours, clipped to
  /// [min, max].  Defaults give a ~9 h median / ~12 h mean, matching the
  /// paper's "<1 to 154 hours; on average 12 hours".
  double refresh_lognormal_mu = 2.2;     // ln(9)
  double refresh_lognormal_sigma = 0.8;
  double refresh_min_hours = 0.5;
  double refresh_max_hours = 154.0;

  /// 1-sigma observation noise.
  double altitude_noise_km = 0.04;
  double inclination_noise_deg = 0.002;
  double angle_noise_deg = 0.01;        // RAAN/argp/mean anomaly
  double eccentricity_noise = 5.0e-5;
  double bstar_lognormal_sigma = 0.18;  // multiplicative fit noise

  /// Probability that a record is a gross tracking error (Fig 10's long
  /// tail: derived altitudes up to ~40,000 km).
  double gross_error_probability = 3.0e-4;
  double gross_error_min_altitude_km = 700.0;
  double gross_error_max_altitude_km = 40000.0;
};

/// Per-satellite tracking state plus the record factory.
class TrackingSimulator {
 public:
  TrackingSimulator(TrackingConfig config, std::uint64_t seed);

  /// Next observation epoch given the previous one.
  [[nodiscard]] double next_observation_jd(double previous_jd);

  /// Produce one TLE record for a satellite at `jd`.  `density_ratio` is the
  /// current storm density enhancement (B* is a fitted drag proxy, so storm
  /// epochs carry proportionally larger values), `decay_rate_km_per_day` the
  /// current decay rate (used for the ndot field).
  [[nodiscard]] tle::Tle observe(const SatelliteState& satellite, double jd,
                                 double density_ratio,
                                 double decay_rate_km_per_day);

 private:
  TrackingConfig config_;
  Rng rng_;
};

}  // namespace cosmicdance::simulation
