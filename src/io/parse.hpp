// Checked numeric parsing helpers.
//
// These are the project's only sanctioned wrappers around the C/C++ raw
// conversion functions (strtod/strtol and friends).  Everywhere else the
// raw calls are banned by `cdlint` rule R3 (raw-parse): an unchecked
// strtod silently reads garbage as a truncated value, which is exactly the
// class of bug the PR-2 data-quality work eliminated from the ingestion
// paths.  Callers outside `src/io/` and `src/tle/` parse numbers through
// this header and get "checked or nothing" semantics for free.
//
// All helpers take std::string_view so the zero-copy ingestion path can
// hand them slices of a MappedFile without materialising per-field
// strings; std::string arguments convert implicitly.
#pragma once

#include <optional>
#include <string_view>

namespace cosmicdance::io {

/// Parse `text` as a double.  The entire string must be consumed (leading
/// whitespace permitted, as in strtod); empty input, trailing garbage or
/// out-of-range values yield nullopt.  Allocation-free for fields up to a
/// TLE line's width.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// Parse `text` as a base-10 long.  The entire string must be consumed
/// (leading whitespace permitted); empty input, trailing garbage or
/// out-of-range values yield nullopt.
[[nodiscard]] std::optional<long> parse_long(std::string_view text);

/// Parse a leading base-10 long and ignore whatever follows it — the
/// fixed-width-cell convention used by archive formats like WDC, where a
/// numeric cell may be padded.  Yields nullopt when no digits are consumed
/// or the value is out of range.
[[nodiscard]] std::optional<long> parse_leading_long(std::string_view text);

}  // namespace cosmicdance::io
