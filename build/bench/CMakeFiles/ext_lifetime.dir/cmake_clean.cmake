file(REMOVE_RECURSE
  "CMakeFiles/ext_lifetime.dir/ext_lifetime.cpp.o"
  "CMakeFiles/ext_lifetime.dir/ext_lifetime.cpp.o.d"
  "ext_lifetime"
  "ext_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
