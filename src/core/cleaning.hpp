// The paper's data-cleaning rules (§3 "Cleaning the data", §A.2).
#pragma once

#include <vector>

#include "core/track.hpp"

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::core {

struct CleaningConfig {
  /// TLEs with derived altitude outside (min, max] are tracking errors
  /// (paper: > 650 km given Starlink's operational shells; Fig 10).
  double outlier_min_altitude_km = 100.0;
  double outlier_max_altitude_km = 650.0;

  /// Orbit-raising filter: drop each satellite's history before it first
  /// comes within this margin of its operational shell altitude.
  double raise_margin_km = 5.0;
  /// Percentile of a track's altitudes used as the operational-shell
  /// estimate (robust against both the staging window and later decay).
  double shell_percentile = 90.0;

  /// Pre-decay filter: a satellite whose altitude immediately before an
  /// event differs from its long-term median by more than this is already
  /// decaying and is excluded from event analyses (paper: 5 km,
  /// "empirically set; configurable").
  double predecay_threshold_km = 5.0;
  /// The pre-event sample must be at most this old to count as
  /// "immediately before" the event.
  double pre_event_max_gap_days = 3.0;
};

/// Remove gross-tracking-error samples from a track (returns the count
/// removed).  The paper's Fig 10(a)->(b) step.
std::size_t remove_outliers(SatelliteTrack& track, const CleaningConfig& config = {});

/// Remove the initial orbit-raising window (returns the count removed).
/// Tracks that never reach their shell (lost in staging) are left intact —
/// the pre-decay filter excludes them from event analyses downstream.
std::size_t remove_orbit_raising(SatelliteTrack& track,
                                 const CleaningConfig& config = {});

/// True when the satellite was already decaying at `event_jd`: either no
/// usable sample immediately before the event, or the pre-event altitude
/// deviates from the track's long-term median by more than the threshold.
[[nodiscard]] bool is_pre_decayed(const SatelliteTrack& track, double event_jd,
                                  const CleaningConfig& config = {});

/// Apply outlier + orbit-raising cleaning to every track, dropping tracks
/// left empty.  Tracks are cleaned independently (one worker per track when
/// num_threads != 1) and the survivors keep their input order, so the
/// result is identical for every thread count.  `metrics` (optional)
/// records clean.* counters (samples removed, tracks kept/dropped).
[[nodiscard]] std::vector<SatelliteTrack> clean_tracks(
    std::vector<SatelliteTrack> tracks, const CleaningConfig& config = {},
    int num_threads = 1, obs::Metrics* metrics = nullptr);

}  // namespace cosmicdance::core
