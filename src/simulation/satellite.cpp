#include "simulation/satellite.hpp"

#include <cmath>

#include "common/units.hpp"
#include "orbit/constants.hpp"

namespace cosmicdance::simulation {

std::string to_string(SatelliteMode mode) {
  switch (mode) {
    case SatelliteMode::kStaging:
      return "staging";
    case SatelliteMode::kRaising:
      return "raising";
    case SatelliteMode::kOperational:
      return "operational";
    case SatelliteMode::kOutage:
      return "outage";
    case SatelliteMode::kDecaying:
      return "decaying";
    case SatelliteMode::kDeorbiting:
      return "deorbiting";
    case SatelliteMode::kReentered:
      return "reentered";
  }
  return "unknown";
}

bool is_uncontrolled(SatelliteMode mode) noexcept {
  return mode == SatelliteMode::kOutage || mode == SatelliteMode::kDecaying;
}

double SatelliteState::ballistic_m2_kg() const noexcept {
  switch (mode) {
    case SatelliteMode::kStaging:
    case SatelliteMode::kRaising:
      return config.ballistic_staging;
    case SatelliteMode::kOperational:
    case SatelliteMode::kDeorbiting:
      return config.ballistic_operational;
    case SatelliteMode::kOutage:
    case SatelliteMode::kDecaying:
      return config.ballistic_uncontrolled;
    case SatelliteMode::kReentered:
      break;
  }
  return config.ballistic_uncontrolled;
}

namespace {

// Shared J2 secular-rate prefactor: 1.5 * J2 * n * (Re/a)^2 in deg/day.
double j2_rate_prefactor(double altitude_km) noexcept {
  const orbit::GravityModel g = orbit::wgs72();
  const double a = altitude_km + g.radius_earth_km;
  const double n_rad_s = std::sqrt(g.mu / (a * a * a));
  const double re_over_a = g.radius_earth_km / a;
  const double rate_rad_s = 1.5 * g.j2 * n_rad_s * re_over_a * re_over_a;
  return rate_rad_s * units::kSecondsPerDay * units::kRadToDeg;
}

}  // namespace

double raan_rate_deg_per_day(double altitude_km, double inclination_deg) noexcept {
  return -j2_rate_prefactor(altitude_km) *
         std::cos(units::deg2rad(inclination_deg));
}

double argp_rate_deg_per_day(double altitude_km, double inclination_deg) noexcept {
  const double sin_i = std::sin(units::deg2rad(inclination_deg));
  return j2_rate_prefactor(altitude_km) * (2.0 - 2.5 * sin_i * sin_i);
}

}  // namespace cosmicdance::simulation
