#include "io/snapshot.hpp"

#include <unistd.h>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>  // SSE4.2 CRC32; used only behind a runtime cpu check
#endif

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "exec/parallel_for.hpp"
#include "io/file.hpp"
#include "obs/obs.hpp"
#include "tle/tle.hpp"

namespace cosmicdance::io {
namespace {

constexpr char kMagic[8] = {'C', 'D', 'S', 'N', 'A', 'P', 'v', '1'};
constexpr char kDeltaMagic[8] = {'C', 'D', 'D', 'E', 'L', 'T', 'A', '1'};
constexpr std::size_t kHeaderSize = 40;

// ---- v3 section layout (see snapshot.hpp for the format doc) ----------------

constexpr std::uint32_t kSectionState = 1;
constexpr std::uint32_t kSectionDst = 2;
constexpr std::uint32_t kSectionCatalogStripe = 3;
constexpr std::uint32_t kSectionQuality = 4;
constexpr std::size_t kSectionEntrySize = 24;

/// Records per catalog stripe (whole satellites each).  Only the catalog's
/// contents pick the boundaries, so encode output is thread-count-
/// invariant; the value balances per-section CRC/decode parallelism
/// against table overhead.
constexpr std::size_t kStripeTargetRecords = 16384;

struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;  // relative to the end of the section table
  std::uint64_t length = 0;
};

constexpr std::uint8_t kFlagDstLineTerminated = 1u << 0;
constexpr std::uint8_t kFlagTleLineTerminated = 1u << 1;
constexpr std::uint8_t kFlagTleBoundaryClean = 1u << 2;
constexpr std::uint8_t kFlagMask = kFlagDstLineTerminated |
                                   kFlagTleLineTerminated |
                                   kFlagTleBoundaryClean;

// ---- little-endian writer ---------------------------------------------------

constexpr bool kLittleEndianHost = std::endian::native == std::endian::little;

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  if constexpr (kLittleEndianHost) {
    out.append(reinterpret_cast<const char*>(&v), 4);
  } else {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  if constexpr (kLittleEndianHost) {
    out.append(reinterpret_cast<const char*>(&v), 8);
  } else {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, std::string_view v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  out.append(v);
}

// ---- bounds-checked little-endian reader ------------------------------------

class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }

  std::uint8_t u8() {
    return static_cast<std::uint8_t>(static_cast<unsigned char>(view(1)[0]));
  }

  std::uint32_t u32() {
    const std::string_view b = view(4);
    if constexpr (kLittleEndianHost) {
      std::uint32_t v;
      std::memcpy(&v, b.data(), 4);
      return v;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(
               b[static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    const std::string_view b = view(8);
    if constexpr (kLittleEndianHost) {
      std::uint64_t v;
      std::memcpy(&v, b.data(), 8);
      return v;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
               b[static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t length = u32();
    const std::string_view raw = view(length);
    return std::string(raw);
  }

  std::string_view view(std::size_t length) {
    if (length > bytes_.size() - pos_) {
      throw ParseError("snapshot payload truncated");
    }
    const std::string_view out = bytes_.substr(pos_, length);
    pos_ += length;
    return out;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// ---- payload encoding -------------------------------------------------------

std::uint8_t policy_byte(diag::ParsePolicy policy) {
  return policy == diag::ParsePolicy::kTolerant ? 1 : 0;
}

void encode_state(std::string& out, const IngestState& state) {
  put_u64(out, state.dst_len);
  put_u64(out, state.dst_hash);
  put_u64(out, state.dst_lines);
  put_u64(out, state.tle_len);
  put_u64(out, state.tle_lines);
  put_u64(out, state.combined_hash);
  std::uint8_t flags = 0;
  if (state.dst_line_terminated) flags |= kFlagDstLineTerminated;
  if (state.tle_line_terminated) flags |= kFlagTleLineTerminated;
  if (state.tle_boundary_clean) flags |= kFlagTleBoundaryClean;
  put_u8(out, flags);
}

IngestState decode_state(Cursor& in) {
  IngestState state;
  state.dst_len = in.u64();
  state.dst_hash = in.u64();
  state.dst_lines = in.u64();
  state.tle_len = in.u64();
  state.tle_lines = in.u64();
  state.combined_hash = in.u64();
  const std::uint8_t flags = in.u8();
  if ((flags & ~kFlagMask) != 0) {
    throw ParseError("snapshot carries unknown ingest-state flags");
  }
  state.dst_line_terminated = (flags & kFlagDstLineTerminated) != 0;
  state.tle_line_terminated = (flags & kFlagTleLineTerminated) != 0;
  state.tle_boundary_clean = (flags & kFlagTleBoundaryClean) != 0;
  return state;
}

void encode_dst(std::string& out, const spaceweather::DstIndex& dst) {
  put_i64(out, dst.start_hour());
  put_u64(out, dst.size());
  // Doubles are stored as their IEEE bit patterns little-endian, which on
  // a little-endian host is exactly the in-memory layout — one append.
  if constexpr (kLittleEndianHost) {
    out.append(reinterpret_cast<const char*>(dst.values().data()),
               dst.size() * 8);
  } else {
    for (const double v : dst.values()) put_f64(out, v);
  }
}

spaceweather::DstIndex decode_dst(Cursor& in) {
  const std::int64_t start = in.i64();
  const std::uint64_t count = in.u64();
  if (count == 0) return {};
  std::vector<double> values;
  if constexpr (kLittleEndianHost) {
    const std::string_view raw = in.view(count * 8);
    values.resize(count);
    std::memcpy(values.data(), raw.data(), raw.size());
  } else {
    values.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) values.push_back(in.f64());
  }
  return spaceweather::DstIndex(start, std::move(values));
}

void encode_tle(std::string& out, const tle::Tle& t) {
  put_i32(out, t.catalog_number);
  put_u8(out, static_cast<std::uint8_t>(t.classification));
  put_string(out, t.international_designator);
  put_f64(out, t.epoch_jd);
  put_f64(out, t.mean_motion_dot);
  put_f64(out, t.mean_motion_ddot);
  put_f64(out, t.bstar);
  put_i32(out, t.ephemeris_type);
  put_i32(out, t.element_set_number);
  put_f64(out, t.inclination_deg);
  put_f64(out, t.raan_deg);
  put_f64(out, t.eccentricity);
  put_f64(out, t.arg_perigee_deg);
  put_f64(out, t.mean_anomaly_deg);
  put_f64(out, t.mean_motion_revday);
  put_i32(out, t.rev_number);
}

tle::Tle decode_tle(Cursor& in) {
  tle::Tle t;
  t.catalog_number = in.i32();
  t.classification = static_cast<char>(in.u8());
  t.international_designator = in.str();
  t.epoch_jd = in.f64();
  t.mean_motion_dot = in.f64();
  t.mean_motion_ddot = in.f64();
  t.bstar = in.f64();
  t.ephemeris_type = in.i32();
  t.element_set_number = in.i32();
  t.inclination_deg = in.f64();
  t.raan_deg = in.f64();
  t.eccentricity = in.f64();
  t.arg_perigee_deg = in.f64();
  t.mean_anomaly_deg = in.f64();
  t.mean_motion_revday = in.f64();
  t.rev_number = in.i32();
  return t;
}

void encode_catalog(std::string& out, const tle::TleCatalog& catalog) {
  put_u64(out, catalog.record_count());
  for (const int id : catalog.satellites()) {
    for (const tle::Tle& t : catalog.history(id)) encode_tle(out, t);
  }
}

tle::TleCatalog decode_catalog(Cursor& in) {
  const std::uint64_t count = in.u64();
  tle::TleCatalog catalog;
  for (std::uint64_t i = 0; i < count; ++i) {
    // add() re-validates each record and, because records were serialised in
    // history order, appends at the end of its satellite's history — the
    // rebuilt catalog is structurally identical to the one serialised.
    if (!catalog.add(decode_tle(in))) {
      throw ParseError("snapshot catalog record collided on reload");
    }
  }
  return catalog;
}

void encode_quality(std::string& out, const diag::DataQualityReport& report) {
  put_u8(out, policy_byte(report.policy));
  put_u64(out, report.stages.size());
  for (const auto& [stage, counters] : report.stages) {
    put_string(out, stage);
    put_u64(out, counters.accepted);
    put_u64(out, counters.repaired);
    put_u32(out, static_cast<std::uint32_t>(counters.quarantined.size()));
    for (const std::size_t q : counters.quarantined) put_u64(out, q);
  }
  put_u64(out, report.quarantined.size());
  for (const diag::QuarantinedRecord& record : report.quarantined) {
    put_string(out, record.stage);
    put_string(out, record.source);
    put_u64(out, record.line);
    put_u8(out, static_cast<std::uint8_t>(record.category));
    put_string(out, record.message);
    put_string(out, record.snippet);
  }
}

diag::ErrorCategory decode_category(Cursor& in) {
  const std::uint8_t raw = in.u8();
  if (raw >= static_cast<std::uint8_t>(kErrorCategoryCount)) {
    throw ParseError("snapshot carries unknown error category");
  }
  return static_cast<diag::ErrorCategory>(raw);
}

diag::DataQualityReport decode_quality(Cursor& in) {
  diag::DataQualityReport report;
  const std::uint8_t policy = in.u8();
  if (policy > 1) throw ParseError("snapshot carries unknown parse policy");
  report.policy = policy == 1 ? diag::ParsePolicy::kTolerant
                              : diag::ParsePolicy::kStrict;
  const std::uint64_t stage_count = in.u64();
  for (std::uint64_t i = 0; i < stage_count; ++i) {
    std::string stage = in.str();
    diag::StageCounters counters;
    counters.accepted = in.u64();
    counters.repaired = in.u64();
    const std::uint32_t categories = in.u32();
    if (categories != counters.quarantined.size()) {
      throw ParseError("snapshot category-count mismatch");
    }
    for (std::size_t c = 0; c < counters.quarantined.size(); ++c) {
      counters.quarantined[c] = in.u64();
    }
    report.stages.emplace(std::move(stage), counters);
  }
  const std::uint64_t quarantined_count = in.u64();
  for (std::uint64_t i = 0; i < quarantined_count; ++i) {
    diag::QuarantinedRecord record;
    record.stage = in.str();
    record.source = in.str();
    record.line = in.u64();
    record.category = decode_category(in);
    record.message = in.str();
    record.snippet = in.str();
    report.quarantined.push_back(std::move(record));
  }
  return report;
}

std::string encode_delta_payload(const SnapshotDelta& delta) {
  std::string payload;
  payload.reserve(96 + delta.dst_appended.size() * 8 +
                  delta.tle_committed.size() * 130);
  encode_state(payload, delta.state);
  put_u64(payload, delta.dst_prior_size);
  put_i64(payload, delta.dst_start_hour);
  put_u64(payload, delta.dst_appended.size());
  for (const double v : delta.dst_appended) put_f64(payload, v);
  put_u64(payload, delta.tle_committed.size());
  for (const tle::Tle& t : delta.tle_committed) encode_tle(payload, t);
  encode_quality(payload, delta.quality_delta);
  return payload;
}

// Apply one decoded layer payload onto the cumulative snapshot.  Throws
// ParseError on any inconsistency between what the layer claims about the
// state it extends and what the snapshot actually holds.
void apply_delta_payload(Cursor& in, SnapshotData& data,
                         diag::ParsePolicy policy) {
  const IngestState next = decode_state(in);
  if (next.dst_len < data.state.dst_len || next.tle_len < data.state.tle_len) {
    throw ParseError("snapshot delta layer shrinks its inputs");
  }
  const std::uint64_t dst_prior = in.u64();
  const std::int64_t dst_start = in.i64();
  if (dst_prior != data.dst.size()) {
    throw ParseError("snapshot delta layer extends the wrong Dst series");
  }
  const std::uint64_t dst_count = in.u64();
  if (data.dst.empty() && dst_count > 0) {
    std::vector<double> values;
    values.reserve(dst_count);
    for (std::uint64_t i = 0; i < dst_count; ++i) values.push_back(in.f64());
    data.dst = spaceweather::DstIndex(dst_start, std::move(values));
  } else {
    if (dst_count > 0 && dst_start != data.dst.start_hour()) {
      throw ParseError("snapshot delta layer moves the Dst anchor");
    }
    for (std::uint64_t i = 0; i < dst_count; ++i) data.dst.push_back(in.f64());
  }
  const std::uint64_t tle_count = in.u64();
  for (std::uint64_t i = 0; i < tle_count; ++i) {
    // Layers record only records the tail parse actually committed, so a
    // replayed add() must succeed; a collision means the layer does not
    // belong to this base.
    if (!data.catalog.add(decode_tle(in))) {
      throw ParseError("snapshot delta record collided on replay");
    }
  }
  const diag::DataQualityReport quality_delta = decode_quality(in);
  if (quality_delta.policy != policy) {
    throw ParseError("snapshot delta layer parsed under a different policy");
  }
  data.quality.merge(quality_delta);
  data.state = next;
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

/// Slice-by-8 tables for a reflected CRC-32 polynomial.  table[0] is the
/// classic byte-at-a-time table; tables 1..7 fold bytes further along, so
/// the main loop can consume 8 input bytes per iteration with identical
/// values to the one-byte walk, just ~6x faster.
CrcTables make_crc_tables(std::uint32_t polynomial) {
  CrcTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? polynomial ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t slice = 1; slice < 8; ++slice) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[slice][i] = c;
    }
  }
  return t;
}

std::uint32_t crc_sliced(const CrcTables& tables, std::string_view bytes) {
  std::uint32_t crc = 0xFFFFFFFFu;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    if constexpr (kLittleEndianHost) {
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
    } else {
      lo = hi = 0;
      for (int i = 0; i < 4; ++i) {
        lo |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
              << (8 * i);
        hi |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[4 + i]))
              << (8 * i);
      }
    }
    lo ^= crc;
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) {
    crc = tables[0][(crc ^ static_cast<unsigned char>(p[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

#if defined(__x86_64__) || defined(__i386__)
/// The SSE4.2 CRC32 instruction implements exactly the reflected
/// Castagnoli polynomial, 8 bytes per ~1-cycle op — an order of magnitude
/// past the table walk.  Compiled for sse4.2 via the function attribute
/// (the translation unit keeps the portable baseline flags) and only
/// reached behind the runtime cpu check in crc32c below.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::string_view bytes) {
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  std::uint64_t crc = 0xFFFFFFFFu;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);  // x86 is little-endian; bytes map directly
    crc = _mm_crc32_u64(crc, word);
    p += 8;
    n -= 8;
  }
  std::uint32_t crc32 = static_cast<std::uint32_t>(crc);
  for (std::size_t i = 0; i < n; ++i) {
    crc32 = _mm_crc32_u8(crc32, static_cast<unsigned char>(p[i]));
  }
  return crc32 ^ 0xFFFFFFFFu;
}
#endif

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const CrcTables tables = make_crc_tables(0xEDB88320u);
  return crc_sliced(tables, bytes);
}

std::uint32_t crc32c(std::string_view bytes) {
#if defined(__x86_64__) || defined(__i386__)
  static const bool hardware = __builtin_cpu_supports("sse4.2");
  if (hardware) return crc32c_hw(bytes);
#endif
  static const CrcTables tables = make_crc_tables(0x82F63B78u);
  return crc_sliced(tables, bytes);
}

IngestState ingest_state_of(std::string_view dst_bytes,
                            std::string_view tle_bytes) {
  IngestState state;
  state.dst_len = dst_bytes.size();
  state.dst_hash = fnv1a(dst_bytes);
  state.dst_lines = static_cast<std::uint64_t>(
      std::count(dst_bytes.begin(), dst_bytes.end(), '\n'));
  state.tle_len = tle_bytes.size();
  state.tle_lines = static_cast<std::uint64_t>(
      std::count(tle_bytes.begin(), tle_bytes.end(), '\n'));
  state.combined_hash = fnv1a(tle_bytes, state.dst_hash);
  state.dst_line_terminated = dst_bytes.empty() || dst_bytes.back() == '\n';
  state.tle_line_terminated = tle_bytes.empty() || tle_bytes.back() == '\n';
  state.tle_boundary_clean = tle::append_boundary_clean(tle_bytes);
  return state;
}

InputClassification classify_inputs(const IngestState& base,
                                    std::string_view dst_bytes,
                                    std::string_view tle_bytes) {
  InputClassification out;
  out.current = ingest_state_of(dst_bytes, tle_bytes);
  const IngestState& cur = out.current;

  if (cur.dst_len == base.dst_len && cur.tle_len == base.tle_len &&
      cur.dst_hash == base.dst_hash &&
      cur.combined_hash == base.combined_hash) {
    out.match = InputMatch::kExact;
    return out;
  }
  // Append: nothing shrank, something grew, the recorded prefixes hash
  // identically, and every grown file's recorded boundary was safe to
  // extend (line-terminated; for TLE also pairing-clean, so an appended
  // line 2 cannot retroactively pair with a prefix line 1).
  if (cur.dst_len < base.dst_len || cur.tle_len < base.tle_len) return out;
  const bool dst_grew = cur.dst_len > base.dst_len;
  const bool tle_grew = cur.tle_len > base.tle_len;
  if (!dst_grew && !tle_grew) return out;  // equal lengths, hashes differ
  if (dst_grew && !base.dst_line_terminated) return out;
  if (tle_grew && !(base.tle_line_terminated && base.tle_boundary_clean)) {
    return out;
  }
  const std::uint64_t dst_prefix_hash =
      dst_grew ? fnv1a(dst_bytes.substr(0, base.dst_len)) : cur.dst_hash;
  if (dst_prefix_hash != base.dst_hash) return out;
  // The recorded combined hash chains the TLE prefix onto the *recorded*
  // Dst hash, so the prefix check reuses that seed even when Dst grew.
  const std::uint64_t tle_prefix_hash =
      fnv1a(tle_bytes.substr(0, base.tle_len), base.dst_hash);
  if (tle_prefix_hash != base.combined_hash) return out;
  out.match = InputMatch::kAppend;
  return out;
}

std::string snapshot_cache_path(const std::string& cache_dir,
                                const std::string& dst_path,
                                const std::string& tle_path) {
  std::uint64_t hash = fnv1a(dst_path);
  hash = fnv1a("|", hash);
  hash = fnv1a(tle_path, hash);
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.cdsnap",
                static_cast<unsigned long long>(hash));
  return (std::filesystem::path(cache_dir) / name).string();
}

std::string encode_snapshot_v2(const SnapshotData& data,
                               diag::ParsePolicy policy) {
  std::string payload;
  // Rough pre-size: a TLE record serialises to ~130 bytes, a Dst hour to 8.
  payload.reserve(128 + data.dst.size() * 8 +
                  data.catalog.record_count() * 130);
  encode_state(payload, data.state);
  encode_dst(payload, data.dst);
  encode_catalog(payload, data.catalog);
  encode_quality(payload, data.quality);

  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kSnapshotFormatVersionV2);
  put_u8(out, policy_byte(policy));
  out.append(3, '\0');
  put_u64(out, data.state.combined_hash);
  put_u64(out, payload.size());
  put_u32(out, crc32(payload));
  out.append(4, '\0');
  out.append(payload);
  return out;
}

std::string encode_snapshot(const SnapshotData& data, diag::ParsePolicy policy,
                            int num_threads) {
  // Stripe plan: whole satellites, cut when the running record count
  // reaches the target.  A pure function of the catalog — never of thread
  // count — so the encoded bytes are identical at any worker count.
  const std::vector<int> sats = data.catalog.satellites();
  std::vector<std::pair<std::size_t, std::size_t>> stripes;  // [begin,end) in sats
  {
    std::size_t begin = 0;
    std::size_t records = 0;
    for (std::size_t i = 0; i < sats.size(); ++i) {
      records += data.catalog.history(sats[i]).size();
      if (records >= kStripeTargetRecords) {
        stripes.emplace_back(begin, i + 1);
        begin = i + 1;
        records = 0;
      }
    }
    if (begin < sats.size()) stripes.emplace_back(begin, sats.size());
  }
  const std::size_t section_count = 3 + stripes.size();
  const auto kind_of = [&](std::size_t i) -> std::uint32_t {
    if (i == 0) return kSectionState;
    if (i == 1) return kSectionDst;
    if (i + 1 < section_count) return kSectionCatalogStripe;
    return kSectionQuality;
  };

  // Each section serialises (and CRCs) into its own buffer, independently.
  struct EncodedSection {
    std::string bytes;
    std::uint32_t crc = 0;
  };
  const std::vector<EncodedSection> sections =
      exec::ordered_map<EncodedSection>(
          section_count, num_threads,
          [&](std::size_t i) {
            EncodedSection section;
            std::string& payload = section.bytes;
            switch (kind_of(i)) {
              case kSectionState:
                encode_state(payload, data.state);
                break;
              case kSectionDst:
                payload.reserve(24 + data.dst.size() * 8);
                encode_dst(payload, data.dst);
                break;
              case kSectionCatalogStripe: {
                const auto [begin, end] = stripes[i - 2];
                std::size_t records = 0;
                for (std::size_t s = begin; s < end; ++s) {
                  records += data.catalog.history(sats[s]).size();
                }
                payload.reserve(8 + (end - begin) * 12 + records * 130);
                put_u64(payload, end - begin);
                for (std::size_t s = begin; s < end; ++s) {
                  const std::span<const tle::Tle> history =
                      data.catalog.history(sats[s]);
                  put_i32(payload, sats[s]);
                  put_u64(payload, history.size());
                  for (const tle::Tle& t : history) encode_tle(payload, t);
                }
                break;
              }
              default:
                encode_quality(payload, data.quality);
                break;
            }
            section.crc = crc32c(payload);
            return section;
          },
          nullptr);

  std::string table;
  table.reserve(section_count * kSectionEntrySize);
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i < section_count; ++i) {
    put_u32(table, kind_of(i));
    put_u32(table, sections[i].crc);
    put_u64(table, offset);
    put_u64(table, sections[i].bytes.size());
    offset += sections[i].bytes.size();
  }
  const std::uint64_t payload_size = table.size() + offset;

  std::string out;
  out.reserve(kHeaderSize + payload_size);
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kSnapshotFormatVersion);
  put_u8(out, policy_byte(policy));
  out.append(3, '\0');
  put_u64(out, data.state.combined_hash);
  put_u64(out, payload_size);
  put_u32(out, crc32c(table));
  put_u32(out, static_cast<std::uint32_t>(section_count));
  out.append(table);
  for (const EncodedSection& section : sections) out.append(section.bytes);
  return out;
}

std::string encode_snapshot_delta(const SnapshotDelta& delta,
                                  std::uint32_t layer_index,
                                  std::uint64_t prev_chain_hash,
                                  diag::ParsePolicy policy) {
  const std::string payload = encode_delta_payload(delta);
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kDeltaMagic, sizeof(kDeltaMagic));
  put_u32(out, layer_index);
  put_u8(out, policy_byte(policy));
  out.append(3, '\0');
  put_u64(out, prev_chain_hash);
  put_u64(out, payload.size());
  put_u32(out, crc32(payload));
  out.append(4, '\0');
  out.append(payload);
  return out;
}

namespace {

/// Decode a v2 (monolithic) base payload into `data`.  Returns false on
/// any disagreement; throws (caught by the caller) on truncated fields.
bool decode_base_v2(std::string_view payload, std::uint64_t header_content_hash,
                    std::uint32_t payload_crc, diag::ParsePolicy policy,
                    SnapshotData& data) {
  // Decode only after the CRC passes: the payload readers bound-check but
  // do not otherwise defend against bit rot.
  if (crc32(payload) != payload_crc) return false;
  Cursor in(payload);
  data.state = decode_state(in);
  if (data.state.combined_hash != header_content_hash) return false;
  data.dst = decode_dst(in);
  data.catalog = decode_catalog(in);
  data.quality = decode_quality(in);
  if (data.quality.policy != policy) return false;
  return in.exhausted();
}

/// Decode a v3 (section-table) base payload into `data`, validating and
/// deserialising sections over `num_threads` workers.  Returns false on
/// any disagreement; throws (caught by the caller) on truncated fields or
/// histories adopt_history refuses.
bool decode_base_v3(std::string_view payload,
                    std::uint64_t header_content_hash, std::uint32_t table_crc,
                    std::uint32_t section_count, diag::ParsePolicy policy,
                    int num_threads, SnapshotData& data) {
  // The table must fit the payload (a short file is a truncated section
  // table) and carry the exact sections the format demands: state, Dst,
  // zero or more catalog stripes, quality.
  if (section_count < 3) return false;
  const std::uint64_t table_size =
      static_cast<std::uint64_t>(section_count) * kSectionEntrySize;
  if (table_size > payload.size()) return false;
  const std::string_view table = payload.substr(0, table_size);
  if (crc32c(table) != table_crc) return false;

  const std::string_view body = payload.substr(table_size);
  std::vector<SectionEntry> entries(section_count);
  {
    Cursor tc(table);
    std::uint64_t running = 0;
    for (std::uint32_t i = 0; i < section_count; ++i) {
      SectionEntry& entry = entries[i];
      entry.kind = tc.u32();
      entry.crc = tc.u32();
      entry.offset = tc.u64();
      entry.length = tc.u64();
      // Sections must tile the body contiguously in table order; any
      // overlap, gap or out-of-bounds length rejects the snapshot.
      if (entry.offset != running) return false;
      if (entry.length > body.size() - running) return false;
      running += entry.length;
      const std::uint32_t expected =
          i == 0 ? kSectionState
          : i == 1 ? kSectionDst
          : i + 1 < section_count ? kSectionCatalogStripe
                                  : kSectionQuality;
      if (entry.kind != expected) return false;
    }
    if (running != body.size()) return false;
  }

  // Validate and deserialise the sections in parallel.  Workers only read
  // the mapped bytes and build private results; failures are carried out
  // as flags (never thrown across the pool) and any one rejects the file.
  struct SectionResult {
    bool ok = true;
    IngestState state;
    std::optional<spaceweather::DstIndex> dst;
    std::vector<std::pair<int, std::vector<tle::Tle>>> satellites;
    std::optional<diag::DataQualityReport> quality;
  };
  std::vector<SectionResult> results = exec::ordered_map<SectionResult>(
      section_count, num_threads,
      [&](std::size_t i) {
        SectionResult result;
        try {
          const SectionEntry& entry = entries[i];
          const std::string_view blob = body.substr(entry.offset, entry.length);
          if (crc32c(blob) != entry.crc) throw ParseError("section CRC");
          Cursor in(blob);
          switch (entry.kind) {
            case kSectionState:
              result.state = decode_state(in);
              break;
            case kSectionDst:
              result.dst = decode_dst(in);
              break;
            case kSectionCatalogStripe: {
              const std::uint64_t sat_count = in.u64();
              result.satellites.reserve(sat_count);
              for (std::uint64_t s = 0; s < sat_count; ++s) {
                const std::int32_t id = in.i32();
                const std::uint64_t records = in.u64();
                std::vector<tle::Tle> history;
                // The byte-count bound keeps a corrupt (but CRC-valid)
                // count from reserving unbounded memory: each record is
                // at least ~125 bytes of section payload.
                if (records > entry.length / 64) {
                  throw ParseError("stripe record count exceeds section");
                }
                history.reserve(records);
                for (std::uint64_t r = 0; r < records; ++r) {
                  history.push_back(decode_tle(in));
                }
                result.satellites.emplace_back(id, std::move(history));
              }
              break;
            }
            default:
              result.quality = decode_quality(in);
              break;
          }
          if (!in.exhausted()) throw ParseError("section trailing bytes");
        } catch (const std::exception&) {
          result.ok = false;
        }
        return result;
      },
      nullptr);
  for (const SectionResult& result : results) {
    if (!result.ok) return false;
  }

  data.state = results.front().state;
  if (data.state.combined_hash != header_content_hash) return false;
  data.dst = std::move(*results[1].dst);
  for (std::size_t i = 2; i + 1 < results.size(); ++i) {
    for (auto& [id, history] : results[i].satellites) {
      // adopt_history re-validates each record and the epoch ordering, and
      // throws on a satellite already adopted — the same defences the v2
      // per-record add() replay gave us, amortised per history.
      data.catalog.adopt_history(id, std::move(history));
    }
  }
  data.quality = std::move(*results.back().quality);
  return data.quality.policy == policy;
}

}  // namespace

std::optional<SnapshotData> decode_snapshot(std::string_view bytes,
                                            diag::ParsePolicy policy,
                                            int num_threads) {
  if (bytes.size() < kHeaderSize) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) return std::nullopt;
  try {
    Cursor header(bytes.substr(sizeof(kMagic), kHeaderSize - sizeof(kMagic)));
    const std::uint32_t version = header.u32();
    if (version != kSnapshotFormatVersion &&
        version != kSnapshotFormatVersionV2) {
      return std::nullopt;
    }
    const std::uint8_t policy_raw = header.u8();
    header.view(3);  // padding
    if (policy_raw != policy_byte(policy)) return std::nullopt;
    const std::uint64_t header_content_hash = header.u64();
    const std::uint64_t payload_size = header.u64();
    const std::uint32_t crc_field = header.u32();
    const std::uint32_t tail_field = header.u32();  // v3: section count
    if (bytes.size() - kHeaderSize < payload_size) return std::nullopt;
    const std::string_view payload = bytes.substr(kHeaderSize, payload_size);

    SnapshotData data;
    const bool base_ok =
        version == kSnapshotFormatVersionV2
            ? decode_base_v2(payload, header_content_hash, crc_field, policy,
                             data)
            : decode_base_v3(payload, header_content_hash, crc_field,
                             tail_field, policy, num_threads, data);
    if (!base_ok) return std::nullopt;

    // Walk the delta chain.  Each layer's header must hash-link to the
    // header before it and carry the next 1-based index, so a missing,
    // reordered or foreign layer breaks the walk and rejects the whole
    // snapshot — the text inputs are the source of truth on any doubt.
    //
    // The one recoverable shape is a torn *tail*: a crashed append leaves
    // a pure prefix of valid layer bytes, so "file ends mid-header",
    // "file ends mid-payload" and "final layer fails its CRC" all mean
    // the bytes before the tear are exactly the pre-append snapshot.
    // Those truncate (tail_truncated) instead of rejecting.  The same
    // check failing anywhere *before* the final layer cannot come from a
    // torn append and still rejects the whole file.
    std::uint64_t chain = fnv1a(bytes.substr(0, kHeaderSize));
    std::size_t pos = kHeaderSize + payload_size;
    std::uint32_t applied = 0;
    while (pos < bytes.size()) {
      if (bytes.size() - pos < kHeaderSize) {
        data.tail_truncated = true;  // torn mid-header
        break;
      }
      const std::string_view layer_header = bytes.substr(pos, kHeaderSize);
      if (std::memcmp(layer_header.data(), kDeltaMagic, sizeof(kDeltaMagic)) !=
          0) {
        return std::nullopt;
      }
      Cursor lh(layer_header.substr(sizeof(kDeltaMagic)));
      const std::uint32_t layer_index = lh.u32();
      const std::uint8_t layer_policy = lh.u8();
      lh.view(3);  // padding
      const std::uint64_t prev_chain = lh.u64();
      const std::uint64_t layer_size = lh.u64();
      const std::uint32_t layer_crc = lh.u32();
      if (layer_index != applied + 1) return std::nullopt;
      if (layer_policy != policy_byte(policy)) return std::nullopt;
      if (prev_chain != chain) return std::nullopt;
      if (bytes.size() - pos - kHeaderSize < layer_size) {
        data.tail_truncated = true;  // torn mid-payload
        break;
      }
      const std::string_view layer_payload =
          bytes.substr(pos + kHeaderSize, layer_size);
      if (crc32(layer_payload) != layer_crc) {
        const bool final_layer = pos + kHeaderSize + layer_size == bytes.size();
        if (!final_layer) return std::nullopt;  // mid-chain bit rot
        data.tail_truncated = true;  // torn inside the final payload
        break;
      }
      Cursor lp(layer_payload);
      apply_delta_payload(lp, data, policy);
      if (!lp.exhausted()) return std::nullopt;
      chain = fnv1a(layer_header);
      pos += kHeaderSize + layer_size;
      ++applied;
    }
    data.delta_layers = applied;
    data.chain_hash = chain;
    return data;
  } catch (const std::exception&) {
    // Truncated fields, invalid enum values, or datasets that fail their
    // own validation on rebuild: all reject-and-reparse, never fatal.
    return std::nullopt;
  }
}

std::optional<SnapshotData> load_snapshot(const std::string& path,
                                          diag::ParsePolicy policy,
                                          obs::Metrics* metrics,
                                          int num_threads) {
  const obs::ScopedPhase phase(metrics, "snapshot.load");
  try {
    const MappedFile mapped(path);
    std::optional<SnapshotData> data =
        decode_snapshot(mapped.view(), policy, num_threads);
    if (metrics != nullptr) {
      if (!data.has_value()) {
        metrics->counter("snapshot.rejected").add(1);
      } else {
        if (data->tail_truncated) {
          metrics->counter("snapshot.delta_truncated").add(1);
        }
        // The warm-throughput numerator: records materialised from
        // snapshot bytes, counted whether or not the caller ends up using
        // them.  Identical for a v2 and v3 encoding of the same data.
        metrics->counter("snapshot.load_records")
            .add(data->catalog.record_count());
        // How the base was laid out on disk (v2 has no section table) —
        // stripe sizing, not results, so a scheduling counter.
        const std::string_view raw = mapped.view();
        if (raw.size() >= kHeaderSize) {
          Cursor header(
              raw.substr(sizeof(kMagic), kHeaderSize - sizeof(kMagic)));
          if (header.u32() == kSnapshotFormatVersion) {
            header.view(20);  // policy + pad, content hash, payload size
            header.u32();     // section-table CRC
            metrics->sched_counter("snapshot.load_sections").add(header.u32());
          }
        }
      }
    }
    return data;
  } catch (const std::exception&) {
    // Unreadable file (most commonly: not written yet) is a plain miss.
    return std::nullopt;
  }
}

namespace {

/// Per-writer temp name for save_snapshot.  A fixed ".tmp" suffix would be
/// shared by every concurrent saver — two processes (or threads) racing to
/// the same cache entry would interleave writes into one temp file and
/// rename a torn hybrid into place.  Embedding the pid separates
/// processes; the process-wide serial separates threads within one.
std::filesystem::path unique_temp_path(const std::string& path) {
  static std::atomic<std::uint64_t> serial{0};
  return std::filesystem::path(
      path + ".tmp." + std::to_string(::getpid()) + "." +
      // cdlint: allow(relaxed-order) the serial only needs uniqueness; no data is published through it
      std::to_string(serial.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

bool save_snapshot(const std::string& path, const SnapshotData& data,
                   diag::ParsePolicy policy, obs::Metrics* metrics,
                   int num_threads) {
  const obs::ScopedPhase phase(metrics, "snapshot.save");
  // Temp-then-rename keeps readers off half-written files; the unique temp
  // name keeps concurrent writers off *each other's* — the rename itself is
  // atomic, so the last complete file wins.
  const std::filesystem::path temp = unique_temp_path(path);
  try {
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
      std::filesystem::create_directories(target.parent_path());
    }
    const std::string bytes = encode_snapshot(data, policy, num_threads);
    {
      // The whole file is in memory already, so commit it with a single
      // buffered write — one syscall-sized transfer, never per-field I/O.
      std::ofstream out(temp, std::ios::binary | std::ios::trunc);
      if (!out) throw IoError("cannot open snapshot temp file");
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      if (!out) throw IoError("failed writing snapshot temp file");
    }
    std::filesystem::rename(temp, target);
    if (metrics != nullptr) {
      metrics->counter("snapshot.written").add(1);
      metrics->counter("snapshot.save_bytes").add(bytes.size());
    }
    return true;
  } catch (const std::exception&) {
    if (metrics != nullptr) metrics->counter("snapshot.write_failed").add(1);
    std::error_code ignored;
    std::filesystem::remove(temp, ignored);
    return false;
  }
}

bool append_snapshot_delta(const std::string& path, const SnapshotDelta& delta,
                           std::uint32_t layer_index,
                           std::uint64_t prev_chain_hash,
                           diag::ParsePolicy policy, obs::Metrics* metrics) {
  const obs::ScopedPhase phase(metrics, "snapshot.save");
  try {
    const std::string bytes =
        encode_snapshot_delta(delta, layer_index, prev_chain_hash, policy);
    // A torn append leaves a layer whose size/CRC checks fail on the next
    // load, which falls back to a full reparse and a fresh base — no
    // temp-and-rename dance needed for crash safety here.
    append_file(path, bytes);
    if (metrics != nullptr) {
      metrics->counter("snapshot.delta_written").add(1);
      metrics->counter("snapshot.save_bytes").add(bytes.size());
    }
    return true;
  } catch (const std::exception&) {
    if (metrics != nullptr) metrics->counter("snapshot.write_failed").add(1);
    return false;
  }
}

}  // namespace cosmicdance::io
