// NOAA G-scale storm classification by Dst bands, as used in the paper:
// G1 minor  -100..-50 nT, G2 moderate -200..-100 nT, G4 severe -350..-200 nT,
// G5 extreme below -350 nT.  (The paper treats G3 "strong" as the ~-200 nT
// boundary; events there fall into the severe band, matching the paper's
// description of the -209/-213/-208 nT hours as the dataset's severe storm.)
#pragma once

#include <string>

namespace cosmicdance::spaceweather {

enum class StormCategory {
  kQuiet = 0,    ///< Dst > -50 nT
  kMinor = 1,    ///< G1: -100 < Dst <= -50   (the paper's "mild")
  kModerate = 2, ///< G2: -200 < Dst <= -100
  kSevere = 3,   ///< G4: -350 < Dst <= -200
  kExtreme = 4,  ///< G5: Dst <= -350
};

/// Dst band thresholds (upper bounds of each storm band), nT.
inline constexpr double kMinorThresholdNt = -50.0;
inline constexpr double kModerateThresholdNt = -100.0;
inline constexpr double kSevereThresholdNt = -200.0;
inline constexpr double kExtremeThresholdNt = -350.0;

/// Classify an hourly Dst value.
[[nodiscard]] StormCategory classify(double dst_nt) noexcept;

/// "quiet" / "minor" / "moderate" / "severe" / "extreme".
[[nodiscard]] std::string to_string(StormCategory category);

/// The upper-bound Dst threshold of a (non-quiet) category, e.g.
/// threshold(kMinor) == -50.  Throws ValidationError for kQuiet.
[[nodiscard]] double threshold(StormCategory category);

}  // namespace cosmicdance::spaceweather
