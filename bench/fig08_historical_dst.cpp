// Fig 8: ~50 years of Dst indices with the well-known storms highlighted
// (1989 Quebec -589 nT ... May 2024 -412 nT).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "io/table.hpp"
#include "spaceweather/historical.hpp"
#include "timeutil/hour_axis.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst =
      spaceweather::DstGenerator(spaceweather::DstGenerator::historical_50_years())
          .generate();

  io::print_heading(std::cout, "Fig 8: yearly minimum Dst, 1975 - mid 2024");
  io::TablePrinter table({"year", "min_dst_nT", "annotation"});
  for (int year = 1975; year <= 2024; ++year) {
    const auto from =
        timeutil::hour_index_from_datetime(timeutil::make_datetime(year, 1, 1));
    const auto to = timeutil::hour_index_from_datetime(
        timeutil::make_datetime(std::min(year + 1, 2025), 1, 1));
    const spaceweather::DstIndex slice = dst.slice(from, to);
    if (slice.empty()) continue;
    std::string annotation;
    for (const auto& storm : spaceweather::fig8_storms()) {
      if (storm.date.year == year) {
        annotation = storm.name + " (" +
                     io::TablePrinter::num(storm.peak_dst_nt, 0) + " nT)";
      }
    }
    table.add_row({std::to_string(year),
                   io::TablePrinter::num(slice.minimum(), 0), annotation});
  }
  table.print(std::cout);

  io::print_heading(std::cout, "Named storms vs the synthetic record");
  io::TablePrinter storms({"storm", "date", "paper_nT", "measured_nT"});
  for (const auto& storm : spaceweather::fig8_storms()) {
    const auto hour = timeutil::hour_index_from_datetime(storm.date);
    const spaceweather::DstIndex window = dst.slice(hour - 24, hour + 96);
    storms.add_row({storm.name, storm.date.to_string().substr(0, 10),
                    io::TablePrinter::num(storm.peak_dst_nt, 0),
                    window.empty() ? "-"
                                   : io::TablePrinter::num(window.minimum(), 0)});
  }
  storms.print(std::cout);
  bench::note("pre-instrumental references (not in the record): Carrington");
  bench::note("1859 ~ -1800 nT, New York Railroad 1921 ~ -907 nT.");
  return 0;
}
