#include "io/csv.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/error.hpp"
#include "diag/diag.hpp"
#include "io/file.hpp"

namespace cosmicdance::io {
namespace {

constexpr const char* kStage = "csv";

// Incremental CSV record parser state.  A record may span lines (quoted
// embedded newlines); the caller feeds lines until parse_into returns true.
struct RecordState {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;  // closed-quote guard, see below

  void reset() {
    row.clear();
    field.clear();
    in_quotes = false;
    field_was_quoted = false;
  }
};

// Returns true when a record is complete and false when it ended mid-quote
// (caller should append the next line).  Throws ParseError on RFC 4180
// violations: a quote opening mid-field, or text after a closing quote
// (`"ab"cd` is an error, not the field `abcd`).
bool parse_into(std::string_view line, RecordState& state) {
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (state.in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          state.field.push_back('"');
          ++i;
        } else {
          state.in_quotes = false;
          state.field_was_quoted = true;
        }
      } else {
        state.field.push_back(c);
      }
    } else {
      if (c == ',') {
        state.row.push_back(state.field);
        state.field.clear();
        state.field_was_quoted = false;
      } else if (state.field_was_quoted) {
        throw ParseError("text after closing quote in CSV field: '" +
                         std::string(line) + "'");
      } else if (c == '"') {
        if (!state.field.empty()) {
          throw ParseError("quote inside unquoted CSV field: '" +
                           std::string(line) + "'");
        }
        state.in_quotes = true;
      } else {
        state.field.push_back(c);
      }
    }
    ++i;
  }
  if (state.in_quotes) {
    state.field.push_back('\n');
    return false;
  }
  state.row.push_back(state.field);
  state.field.clear();
  state.field_was_quoted = false;
  return true;
}

}  // namespace

CsvRow parse_csv_line(std::string_view line) {
  RecordState state;
  if (!parse_into(line, state)) {
    throw ParseError("unterminated quote in CSV line: '" + std::string(line) +
                     "'");
  }
  return std::move(state.row);
}

std::vector<CsvRow> read_csv(std::string_view text, diag::ParseLog* log,
                             const std::string& source) {
  std::vector<CsvRow> rows;
  // Pre-size from the line count (one memchr scan) instead of growing
  // through repeated reallocation; multi-line quoted records only make the
  // estimate generous.
  rows.reserve(
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')) + 1);
  RecordState state;
  std::size_t line_number = 0;
  std::size_t record_start_line = 0;  // first line of the in-flight record
  std::string record_text;            // raw text of the in-flight record
  for (std::size_t pos = 0; pos < text.size();) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    ++line_number;
    // CRLF normalization: a trailing \r belongs to the record separator --
    // unless the line ends inside a quoted field, where it is content and
    // is restored below (a quoted "a\r\nb" must round-trip intact).
    const bool had_cr = !line.empty() && line.back() == '\r';
    if (had_cr) line.remove_suffix(1);
    if (!state.in_quotes && line.empty()) continue;
    if (record_text.empty()) record_start_line = line_number;
    record_text += line;
    try {
      if (parse_into(line, state)) {
        rows.push_back(std::move(state.row));
        state.reset();
        record_text.clear();
        if (log != nullptr) log->accept(kStage);
      } else {
        // parse_into just appended the embedded '\n'; reinsert the \r that
        // CRLF stripping took from inside the quoted field.
        if (had_cr) state.field.insert(state.field.size() - 1, 1, '\r');
        record_text.push_back('\n');
      }
    } catch (const ParseError& error) {
      if (log == nullptr) throw;
      log->reject(kStage, error.category(), error.what(), record_text,
                  diag::RecordRef{source, record_start_line});
      state.reset();
      record_text.clear();
    }
  }
  if (state.in_quotes) {
    // Routed like any other malformed record: without a caller log, a local
    // strict ParseLog reproduces the historical throw-on-first-error
    // behaviour (with a located message).
    diag::ParseLog fallback;
    diag::ParseLog& diagnostics = log != nullptr ? *log : fallback;
    diagnostics.reject(kStage, ErrorCategory::kStructure,
                       "CSV input ended inside a quoted field", record_text,
                       diag::RecordRef{source, record_start_line});
  }
  return rows;
}

std::vector<CsvRow> read_csv(std::istream& in, diag::ParseLog* log,
                             const std::string& source) {
  // Streams cannot be mapped: slurp once into a pre-sized buffer (the
  // historical per-line getline loop allocated throughout) and parse views.
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = std::move(buffer).str();
  return read_csv(std::string_view(text), log, source);
}

std::vector<CsvRow> read_csv_file(const std::string& path, diag::ParseLog* log) {
  const MappedFile mapped(path);
  return read_csv(mapped.view(), log, path);
}

std::string escape_csv_field(const std::string& field) {
  // '\r' must force quoting too: written bare, a trailing CR would be
  // absorbed by read_csv's CRLF normalisation and the field would come back
  // truncated.
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string format_csv_row(const CsvRow& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += escape_csv_field(row[i]);
  }
  return out;
}

void write_csv(std::ostream& out, const std::vector<CsvRow>& rows) {
  for (const CsvRow& row : rows) out << format_csv_row(row) << '\n';
}

void write_csv_file(const std::string& path, const std::vector<CsvRow>& rows) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open CSV file for writing: " + path);
  write_csv(out, rows);
  if (!out) throw IoError("failed writing CSV file: " + path);
}

}  // namespace cosmicdance::io
