// cdlint corpus: negative control.  src/io/ is the sanctioned home of raw
// conversions, so strtod here must produce no raw-parse finding.
#include <cstdlib>

double parse_raw(const char* text) {
  char* end = nullptr;
  return strtod(text, &end);
}
