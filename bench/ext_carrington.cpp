// Extension (paper §1-2 motivation): a Carrington-scale what-if.
// Replaces the May-2024 super-storm with a ~ -1800 nT event over an
// established fleet, with and without proactive operator response, and adds
// the drag-only lifetime view at the staging orbit.
#include <iostream>

#include "atmosphere/lifetime.hpp"
#include "bench_common.hpp"
#include "io/table.hpp"

using namespace cosmicdance;

namespace {

void run_fleet(const spaceweather::DstIndex& dst, bool proactive,
               io::TablePrinter& table) {
  auto config = simulation::scenario::may_2024(&dst, /*fleet_size=*/600);
  // Run through year end: a 550 km tumbling casualty takes ~4 months to
  // reenter, so a short window would under-report losses.
  config.end = timeutil::make_datetime(2024, 12, 31);
  config.failures.proactive_response = proactive;
  auto result = simulation::ConstellationSimulator(config).run();
  int outages = 0;
  int permanent = 0;
  for (const auto& failure : result.failures) {
    if (failure.kind == simulation::FailureKind::kTemporaryOutage) ++outages;
    if (failure.kind == simulation::FailureKind::kPermanentDecay) ++permanent;
  }
  table.add_row({proactive ? "proactive ops" : "unmitigated",
                 std::to_string(result.launched), std::to_string(outages),
                 std::to_string(permanent),
                 std::to_string(result.launched - result.tracked_at_end)});
}

}  // namespace

int main() {
  const spaceweather::DstIndex dst =
      spaceweather::DstGenerator(spaceweather::DstGenerator::carrington_what_if())
          .generate();

  io::print_heading(std::cout, "Carrington-scale what-if (peak Dst)");
  bench::expect("event peak (nT)", "~-1800 (1859 estimate)", dst.minimum(), 0);
  long below350 = 0;
  for (const double v : dst.values()) {
    if (v <= -350.0) ++below350;
  }
  std::printf("  hours at G5/extreme (<= -350 nT): %ld\n", below350);

  io::print_heading(std::cout, "Fleet outcome (May-Dec window, 600 satellites)");
  io::TablePrinter table({"posture", "fleet", "outages", "permanent", "lost"});
  run_fleet(dst, /*proactive=*/false, table);
  run_fleet(dst, /*proactive=*/true, table);
  table.print(std::cout);

  io::print_heading(std::cout, "Drag-only lifetime at key altitudes during the event");
  io::TablePrinter lifetime({"altitude_km", "config", "lifetime"});
  atmosphere::LifetimeConfig storm_config;
  storm_config.dst = &dst;
  storm_config.start_jd =
      timeutil::to_julian(timeutil::make_datetime(2024, 5, 10));
  for (const double altitude : {210.0, 350.0, 550.0}) {
    for (const auto& [label, ballistic] :
         {std::pair{"knife-edge (0.004)", 0.004}, std::pair{"tumbling (0.3)", 0.3}}) {
      const double days =
          atmosphere::decay_lifetime_days(altitude, ballistic, storm_config);
      lifetime.add_row({io::TablePrinter::num(altitude, 0), label,
                        days >= storm_config.max_days
                            ? std::string("> cap")
                            : io::TablePrinter::num(days, 1) + " days"});
    }
  }
  lifetime.print(std::cout);

  bench::note("the paper's framing: today's measurements are a soft lower");
  bench::note("bound — nothing in 2020-2024 came near Carrington scale; this");
  bench::note("what-if shows the regime the community worries about.");
  return 0;
}
