#include "spaceweather/wdc.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "io/file.hpp"
#include "io/parse.hpp"

namespace cosmicdance::spaceweather {
namespace {

constexpr int kMissing = 9999;

struct DayRecord {
  timeutil::HourIndex first_hour = 0;  // 00 UT of the day
  std::array<int, 24> values{};        // nT (integers, archive convention)
  std::array<bool, 24> present{};
};

std::string format_day(const DayRecord& day) {
  const timeutil::DateTime dt = timeutil::datetime_from_hour_index(day.first_hour);
  char head[32];
  std::snprintf(head, sizeof(head), "DST%02d%02d*%02dRRX %02d0000", dt.year % 100,
                dt.month, dt.day, dt.year / 100);
  std::string line = head;  // cols 1-20 (base value 0000: values are absolute)
  for (int h = 0; h < 24; ++h) {
    char cell[8];
    std::snprintf(cell, sizeof(cell), "%4d", day.present[h] ? day.values[h] : kMissing);
    line += cell;
  }
  // Daily mean over present hours (archive stores it rounded).
  long sum = 0;
  int count = 0;
  for (int h = 0; h < 24; ++h) {
    if (day.present[h]) {
      sum += day.values[h];
      ++count;
    }
  }
  char mean[8];
  std::snprintf(mean, sizeof(mean), "%4d",
                count > 0 ? static_cast<int>(std::lround(
                                static_cast<double>(sum) / count))
                          : kMissing);
  line += mean;
  return line;
}

int parse_int(std::string_view text, const char* what) {
  // Fixed-width archive cells are space-padded, so only the leading number
  // matters; io::parse_leading_long rejects cells with no digits at all.
  // Taking a view keeps the per-cell slice allocation-free.
  const std::optional<long> v = io::parse_leading_long(text);
  if (!v.has_value()) {
    throw ParseError(std::string("bad WDC numeric field '") + what + "': '" +
                     std::string(text) + "'");
  }
  return static_cast<int>(*v);
}

}  // namespace

std::string to_wdc(const DstIndex& dst) {
  if (dst.empty()) return {};
  std::string out;
  // Align to the UT day containing the first sample.
  timeutil::HourIndex hour = dst.start_hour();
  timeutil::HourIndex day_start = hour - ((hour % 24) + 24) % 24;
  while (day_start < dst.end_hour()) {
    DayRecord day;
    day.first_hour = day_start;
    for (int h = 0; h < 24; ++h) {
      const timeutil::HourIndex cursor = day_start + h;
      if (dst.covers(cursor)) {
        day.present[static_cast<std::size_t>(h)] = true;
        day.values[static_cast<std::size_t>(h)] =
            static_cast<int>(std::lround(dst.at(cursor)));
      }
    }
    out += format_day(day);
    out.push_back('\n');
    day_start += 24;
  }
  return out;
}

DstIndex from_wdc(std::string_view text, diag::ParseLog* log,
                  const std::string& source) {
  DstIndex dst;
  from_wdc_append(dst, text, log, source, 1);
  return dst;
}

void from_wdc_append(DstIndex& dst, std::string_view tail,
                     diag::ParseLog* log, const std::string& source,
                     std::size_t first_line) {
  constexpr const char* kStage = "wdc";
  // Without a caller-supplied log, a local strict one reproduces the
  // historical throw-on-first-error behaviour (with located messages).
  diag::ParseLog fallback;
  diag::ParseLog& diagnostics = log != nullptr ? *log : fallback;

  // One parsed day record: present hourly samples, located for diagnostics.
  struct DaySamples {
    std::size_t line_number = 0;
    std::vector<std::pair<timeutil::HourIndex, int>> hours;  // hour -> nT
  };

  // Assembly state, resumed from the series being extended: the append
  // entry point continues exactly where parsing the prefix left off, so a
  // prefix-then-tail parse is indistinguishable from one whole-text pass.
  bool started = !dst.empty();
  timeutil::HourIndex expected = dst.end_hour();

  // Single pass: each line is sliced in place (views all the way into
  // parse_int), parsed, and — if it survives — immediately committed to
  // the series.  Parse and structure failures therefore quarantine in
  // strict file order, and under a strict policy the first malformed
  // record of any kind throws, wherever it sits in the file.
  std::size_t line_number = first_line - 1;
  for (std::size_t pos = 0; pos < tail.size();) {
    const std::size_t eol = tail.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? tail.substr(pos)
                                : tail.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? tail.size() : eol + 1;
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    DaySamples day;
    day.line_number = line_number;
    try {
      if (line.size() < 120) {
        throw ParseError("WDC record shorter than 120 characters: '" +
                         std::string(line) + "'");
      }
      if (line.substr(0, 3) != "DST") {
        throw ParseError("WDC record does not start with DST: '" +
                         std::string(line) + "'");
      }
      const int yy = parse_int(line.substr(3, 2), "year");
      const int month = parse_int(line.substr(5, 2), "month");
      const int date = parse_int(line.substr(8, 2), "day");
      const int century = parse_int(line.substr(14, 2), "century");
      const int base = parse_int(line.substr(16, 4), "base");
      const int year = century * 100 + yy;
      const timeutil::HourIndex day_start = timeutil::hour_index_from_datetime(
          timeutil::make_datetime(year, month, date));
      for (int h = 0; h < 24; ++h) {
        const int value = parse_int(
            line.substr(20 + static_cast<std::size_t>(h) * 4, 4), "hour value");
        if (value == kMissing) continue;
        day.hours.emplace_back(day_start + h, value + base * 100);
      }
    } catch (const ParseError& error) {
      diagnostics.reject(kStage, error.category(), error.what(),
                         std::string(line), diag::RecordRef{source, line_number});
      continue;  // tolerant: quarantine the record and move on
    } catch (const ValidationError& error) {
      diagnostics.reject(kStage, ErrorCategory::kRange, error.what(),
                         std::string(line), diag::RecordRef{source, line_number});
      continue;
    }

    // Commit the day.  Records must be contiguous once missing edges are
    // trimmed; under a tolerant policy interior gaps — missing-value runs
    // or holes left by quarantined days — are linearly interpolated (each
    // filled hour counted as repaired), and out-of-order or duplicate days
    // are quarantined whole.
    if (started && !day.hours.empty() && day.hours.front().first < expected) {
      diagnostics.reject(kStage, ErrorCategory::kStructure,
                         "out-of-order or duplicate WDC day record at hour index " +
                             std::to_string(day.hours.front().first),
                         "", diag::RecordRef{source, day.line_number});
      continue;  // tolerant: drop the whole day
    }
    for (const auto& [hour, value] : day.hours) {
      if (!started) {
        dst = DstIndex(hour, std::vector<double>{});
        expected = hour;
        started = true;
      }
      if (hour > expected) {
        if (!diagnostics.tolerant()) {
          diagnostics.reject(kStage, ErrorCategory::kStructure,
                             "gap in WDC hourly record at hour index " +
                                 std::to_string(hour),
                             "", diag::RecordRef{source, day.line_number});
        }
        const auto gap = static_cast<std::size_t>(hour - expected);
        const double previous = dst.values().back();
        const double step =
            (static_cast<double>(value) - previous) / static_cast<double>(gap + 1);
        for (std::size_t k = 1; k <= gap; ++k) {
          dst.push_back(previous + step * static_cast<double>(k));
        }
        diagnostics.repair(kStage, gap);
        expected = hour;
      }
      dst.push_back(static_cast<double>(value));
      ++expected;
    }
    // A day only counts as accepted once it is committed to the series.
    diagnostics.accept(kStage);
  }
}

void write_wdc_file(const std::string& path, const DstIndex& dst) {
  io::write_file(path, to_wdc(dst));
}

DstIndex read_wdc_file(const std::string& path, diag::ParseLog* log) {
  const io::MappedFile mapped(path);
  return from_wdc(mapped.view(), log, path);
}

}  // namespace cosmicdance::spaceweather
