#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "orbit/constants.hpp"
#include "orbit/elements.hpp"
#include "orbit/frames.hpp"
#include "orbit/kepler.hpp"
#include "orbit/state.hpp"

namespace cosmicdance::orbit {
namespace {

using units::deg2rad;
using units::kTwoPi;

TEST(ConstantsTest, Wgs72Values) {
  const GravityModel g = wgs72();
  EXPECT_DOUBLE_EQ(g.mu, 398600.8);
  EXPECT_DOUBLE_EQ(g.radius_earth_km, 6378.135);
  EXPECT_NEAR(g.xke, 0.07436691613, 1e-10);
  EXPECT_NEAR(g.tumin, 13.44683969, 1e-6);
  EXPECT_NEAR(g.j3oj2, -0.00000253881 / 0.001082616, 1e-12);
}

TEST(ElementsTest, MeanMotionSmaRoundTrip) {
  for (const double sma : {6728.0, 6928.0, 7178.0, 26560.0, 42164.0}) {
    const double n = mean_motion_revday_from_sma(sma);
    EXPECT_NEAR(sma_from_mean_motion_revday(n), sma, 1e-6);
  }
}

TEST(ElementsTest, StarlinkShellNumbers) {
  // ~550 km shell corresponds to ~15.06 rev/day (the familiar Starlink value).
  const double n = mean_motion_from_altitude_km(550.0);
  EXPECT_NEAR(n, 15.06, 0.03);
  EXPECT_NEAR(altitude_km_from_mean_motion(n), 550.0, 1e-9);
}

TEST(ElementsTest, GeoMeanMotion) {
  // Geostationary: ~35786 km altitude, ~1 rev/day.
  EXPECT_NEAR(mean_motion_from_altitude_km(35786.0), 1.0027, 0.001);
}

TEST(ElementsTest, PeriodMatchesMeanMotion) {
  EXPECT_NEAR(period_minutes(15.0), 96.0, 1e-12);
  EXPECT_NEAR(period_minutes(1.0), 1440.0, 1e-12);
}

TEST(ElementsTest, CircularSpeedLeo) {
  // ~7.59 km/s at 550 km.
  EXPECT_NEAR(circular_speed_kms(6928.0), 7.585, 0.01);
}

TEST(ElementsTest, Validation) {
  EXPECT_THROW(static_cast<void>(mean_motion_revday_from_sma(0.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(sma_from_mean_motion_revday(-1.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(period_minutes(0.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(circular_speed_kms(-5.0)), ValidationError);

  KeplerianElements coe;
  coe.eccentricity = 1.0;
  EXPECT_THROW(coe.validate(), ValidationError);
  coe.eccentricity = 0.5;
  coe.semi_major_axis_km = -1.0;
  EXPECT_THROW(coe.validate(), ValidationError);
  coe.semi_major_axis_km = 7000.0;
  coe.inclination_rad = 4.0;
  EXPECT_THROW(coe.validate(), ValidationError);
}

TEST(KeplerTest, CircularIsIdentity) {
  for (double m = 0.0; m < kTwoPi; m += 0.3) {
    EXPECT_NEAR(solve_kepler(m, 0.0), m, 1e-12);
  }
}

TEST(KeplerTest, KnownSolution) {
  // Vallado example 2-1: M = 235.4 deg, e = 0.4 -> E = 220.512074 deg.
  const double e_anom = solve_kepler(deg2rad(235.4), 0.4);
  EXPECT_NEAR(units::rad2deg(e_anom), 220.512074767522, 1e-6);
}

// Property sweep: the solver must satisfy Kepler's equation for all (M, e).
class KeplerSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(KeplerSweep, SatisfiesKeplersEquation) {
  const auto [m_deg, ecc] = GetParam();
  const double m = deg2rad(m_deg);
  const double e_anom = solve_kepler(m, ecc);
  const double m_back = mean_from_eccentric(e_anom, ecc);
  EXPECT_NEAR(units::wrap_pi(m_back - units::wrap_two_pi(m)), 0.0, 1e-9)
      << "M=" << m_deg << " e=" << ecc;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KeplerSweep,
    ::testing::Combine(::testing::Values(0.0, 1.0, 45.0, 90.0, 179.0, 180.0,
                                         181.0, 270.0, 359.0),
                       ::testing::Values(0.0, 1e-4, 0.1, 0.5, 0.9, 0.99)));

TEST(KeplerTest, AnomalyConversionsRoundTrip) {
  for (const double ecc : {0.0, 0.2, 0.7}) {
    for (double nu = 0.05; nu < kTwoPi; nu += 0.5) {
      const double e_anom = eccentric_from_true(nu, ecc);
      EXPECT_NEAR(true_from_eccentric(e_anom, ecc), nu, 1e-10);
    }
  }
}

TEST(KeplerTest, RejectsHyperbolic) {
  EXPECT_THROW(static_cast<void>(solve_kepler(1.0, 1.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(solve_kepler(1.0, -0.1)), ValidationError);
  EXPECT_THROW(static_cast<void>(true_from_eccentric(1.0, 1.5)), ValidationError);
}

TEST(StateTest, VectorAlgebra) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  const Vec3 z = cross(x, y);
  EXPECT_DOUBLE_EQ(z[2], 1.0);
  EXPECT_DOUBLE_EQ(norm(scale(z, -3.0)), 3.0);
  EXPECT_DOUBLE_EQ(add(x, y)[0], 1.0);
  EXPECT_DOUBLE_EQ(sub(x, y)[1], -1.0);
}

TEST(StateTest, CircularOrbitStateMagnitudes) {
  KeplerianElements coe;
  coe.semi_major_axis_km = 6928.0;
  coe.eccentricity = 0.0;
  coe.inclination_rad = deg2rad(53.0);
  const StateVector sv = state_from_elements(coe);
  EXPECT_NEAR(norm(sv.position_km), 6928.0, 1e-6);
  EXPECT_NEAR(norm(sv.velocity_kms), circular_speed_kms(6928.0), 1e-9);
  // Velocity perpendicular to position for a circular orbit.
  EXPECT_NEAR(dot(sv.position_km, sv.velocity_kms), 0.0, 1e-6);
}

// COE -> RV -> COE round trip across a grid of orbits.
class StateRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(StateRoundTrip, ElementsSurvive) {
  const auto [ecc, inc_deg, ma_deg] = GetParam();
  KeplerianElements coe;
  coe.semi_major_axis_km = 7000.0;
  coe.eccentricity = ecc;
  coe.inclination_rad = deg2rad(inc_deg);
  coe.raan_rad = deg2rad(80.0);
  coe.arg_perigee_rad = deg2rad(40.0);
  coe.mean_anomaly_rad = deg2rad(ma_deg);

  const KeplerianElements back = elements_from_state(state_from_elements(coe));
  EXPECT_NEAR(back.semi_major_axis_km, coe.semi_major_axis_km, 1e-5);
  EXPECT_NEAR(back.eccentricity, coe.eccentricity, 1e-8);
  EXPECT_NEAR(back.inclination_rad, coe.inclination_rad, 1e-9);
  if (ecc > 1e-6 && inc_deg > 0.01) {
    EXPECT_NEAR(units::wrap_pi(back.raan_rad - coe.raan_rad), 0.0, 1e-8);
    EXPECT_NEAR(units::wrap_pi(back.arg_perigee_rad - coe.arg_perigee_rad), 0.0,
                1e-6);
    EXPECT_NEAR(units::wrap_pi(back.mean_anomaly_rad - coe.mean_anomaly_rad), 0.0,
                1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StateRoundTrip,
    ::testing::Combine(::testing::Values(1e-3, 0.1, 0.6),
                       ::testing::Values(0.5, 53.0, 97.6, 140.0),
                       ::testing::Values(10.0, 200.0, 350.0)));

TEST(StateTest, CircularEquatorialHandled) {
  KeplerianElements coe;
  coe.semi_major_axis_km = 42164.0;
  coe.eccentricity = 0.0;
  coe.inclination_rad = 0.0;
  coe.mean_anomaly_rad = deg2rad(123.0);
  const KeplerianElements back = elements_from_state(state_from_elements(coe));
  EXPECT_NEAR(back.semi_major_axis_km, 42164.0, 1e-5);
  EXPECT_LT(back.eccentricity, 1e-8);
}

TEST(StateTest, RejectsDegenerateStates) {
  StateVector sv;
  sv.position_km = {0.1, 0.0, 0.0};
  sv.velocity_kms = {0.0, 7.5, 0.0};
  EXPECT_THROW(static_cast<void>(elements_from_state(sv)), PropagationError);
  sv.position_km = {7000.0, 0.0, 0.0};
  sv.velocity_kms = {0.0, 20.0, 0.0};  // hyperbolic
  EXPECT_THROW(static_cast<void>(elements_from_state(sv)), PropagationError);
}

TEST(FramesTest, TemeEcefRoundTrip) {
  const Vec3 r{6524.834, 6862.875, 6448.296};
  const double jd = 2453101.828;
  const Vec3 back = ecef_to_teme(teme_to_ecef(r, jd), jd);
  EXPECT_NEAR(back[0], r[0], 1e-9);
  EXPECT_NEAR(back[1], r[1], 1e-9);
  EXPECT_NEAR(back[2], r[2], 1e-9);
}

TEST(FramesTest, RotationPreservesNorm) {
  const Vec3 r{1234.5, -6543.2, 987.6};
  EXPECT_NEAR(norm(teme_to_ecef(r, 2459000.5)), norm(r), 1e-9);
}

TEST(FramesTest, GeodeticRoundTrip) {
  Geodetic geo;
  geo.latitude_rad = deg2rad(34.352496);
  geo.longitude_rad = deg2rad(46.4464);
  geo.altitude_km = 5085.22;
  const Geodetic back = ecef_to_geodetic(geodetic_to_ecef(geo));
  EXPECT_NEAR(back.latitude_rad, geo.latitude_rad, 1e-9);
  EXPECT_NEAR(back.longitude_rad, geo.longitude_rad, 1e-9);
  EXPECT_NEAR(back.altitude_km, geo.altitude_km, 1e-6);
}

TEST(FramesTest, EquatorAndPole) {
  // Point on the equator at sea level.
  const Geodetic equator = ecef_to_geodetic({6378.137, 0.0, 0.0});
  EXPECT_NEAR(equator.latitude_rad, 0.0, 1e-9);
  EXPECT_NEAR(equator.altitude_km, 0.0, 1e-6);
  // Point above the north pole: polar radius ~6356.752 km.
  const Geodetic pole = ecef_to_geodetic({0.0, 0.0, 6756.752});
  EXPECT_NEAR(pole.latitude_rad, deg2rad(90.0), 1e-6);
  EXPECT_NEAR(pole.altitude_km, 400.0, 0.01);
}

TEST(FramesTest, LeoSatelliteAltitudeSensible) {
  // A satellite at geocentric radius 6928 km should sit at ~535-560 km
  // geodetic altitude depending on latitude (Earth oblateness).
  for (double lat_frac = 0.0; lat_frac <= 1.0; lat_frac += 0.25) {
    const double angle = lat_frac * units::kPi / 2.0;
    const Vec3 r{6928.0 * std::cos(angle), 0.0, 6928.0 * std::sin(angle)};
    const Geodetic geo = ecef_to_geodetic(r);
    EXPECT_GT(geo.altitude_km, 520.0);
    EXPECT_LT(geo.altitude_km, 575.0);
  }
}

}  // namespace
}  // namespace cosmicdance::orbit
