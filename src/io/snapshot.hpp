// Binary catalog snapshot cache with append-aware delta layers (the warm-
// start half of the zero-copy ingestion work).
//
// Parsing the text archives dominates pipeline start-up, yet between runs
// the inputs rarely change — and when they do change, real TLE/Dst feeds
// are append-heavy: the same prefix plus N new bytes at the end.  A
// snapshot serialises the *parsed* artefacts — the Dst series, the TLE
// catalog and the ingestion DataQualityReport — keyed by the inputs' byte
// lengths and FNV-1a content hashes:
//
//   * A warm run whose inputs match exactly loads the snapshot and skips
//     text parsing entirely (the PR 5 fast path).
//   * A warm run whose inputs are an unchanged prefix plus appended bytes
//     parses only the tail and persists the newly parsed artefacts as a
//     *delta layer* appended to the snapshot file, chain-hashed to the
//     layer before it.  Once the chain reaches kMaxSnapshotDeltaLayers the
//     next append compacts everything back into a single base.
//   * Any other disagreement (shrunk or edited inputs, format version,
//     parse policy, truncation, CRC, a broken layer chain) makes the
//     loader/caller silently fall back to the text path and rewrite a
//     fresh base.  See DESIGN.md §14 for the format and the reasoning.
//
// Layout: a fixed 40-byte base header
//   bytes  0-7   magic "CDSNAPv1"
//   bytes  8-11  format version (u32)
//   byte   12    parse policy (0 strict, 1 tolerant)
//   bytes 13-15  zero padding
//   bytes 16-23  FNV-1a content hash of the raw inputs (u64, dst chained
//                into tle — the same combined hash IngestState carries)
//   bytes 24-31  base payload size in bytes (u64)
//   bytes 32-35  v2: CRC32 of the base payload; v3: CRC32C of the section
//                table (u32)
//   bytes 36-39  v2: zero padding; v3: section count (u32)
// followed by the base payload.  In v2 the payload is one monolithic
// encoding of state + Dst + catalog + quality, integrity-checked by the
// single header CRC.  In v3 the payload is a *section table* followed by
// the section bytes, so a loader can validate and deserialise sections
// independently (in parallel) and size its containers up front:
//   table:   section count × 24-byte entries
//              u32 kind (1 state, 2 Dst, 3 catalog stripe, 4 quality)
//              u32 CRC32C of the section's bytes
//              u64 offset (relative to the end of the table)
//              u64 length in bytes
//            Entries must tile the post-table payload contiguously in
//            order (offset == sum of prior lengths) — anything else
//            (overlap, gap, out-of-bounds) rejects the snapshot.
//   kinds:   exactly one state section first, one Dst section second, any
//            number of catalog stripes (whole satellites each, stripe
//            boundaries fixed at encode time so the bytes are independent
//            of writer thread count), and one quality section last.
// Delta layers are identical in v2 and v3 files: zero or more follow the
// base payload,
// each a 40-byte layer header
//   bytes  0-7   magic "CDDELTA1"
//   bytes  8-11  1-based layer index (u32)
//   byte   12    parse policy
//   bytes 13-15  zero padding
//   bytes 16-23  chain hash: FNV-1a of the previous layer's header bytes
//                (the base header for layer 1) — out-of-order, missing or
//                spliced layers break the chain and reject the snapshot
//   bytes 24-31  layer payload size in bytes (u64)
//   bytes 32-35  CRC32 of the layer payload (u32)
//   bytes 36-39  zero padding
// followed by that layer's payload.  All integers little-endian; doubles
// are stored as their IEEE-754 bit patterns so reload is bit-exact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "diag/diag.hpp"
#include "spaceweather/dst_index.hpp"
#include "tle/catalog.hpp"

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::io {

/// Bumped on any change to the payload encoding; a version mismatch is a
/// silent reject-and-reparse, never a migration — except v2, which this
/// build still *reads* (never writes) so existing caches survive the v3
/// rollout.  v2 added the ingest state record and delta layers; v3 added
/// the section-table payload (DESIGN.md §14, §18).
inline constexpr std::uint32_t kSnapshotFormatVersion = 3;

/// The previous monolithic-payload format, still accepted by
/// decode_snapshot (including its delta chains).
inline constexpr std::uint32_t kSnapshotFormatVersionV2 = 2;

/// Delta layers allowed on a base before the next append compacts the
/// whole chain back into a single base.  Small on purpose: every layer is
/// one more header walk + CRC on load, and compaction writes are already
/// amortised against a full text parse.
inline constexpr std::uint32_t kMaxSnapshotDeltaLayers = 4;

/// 64-bit FNV-1a over `bytes`, chainable through `seed` to hash several
/// buffers as one stream.
inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ULL;
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes,
                                  std::uint64_t seed = kFnv1aOffset);

/// CRC32 (IEEE 802.3 polynomial) of `bytes` — the v2 payload and delta-
/// layer integrity check.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// CRC32C (Castagnoli polynomial) of `bytes` — the v3 section and
/// section-table integrity check.  Uses the SSE4.2 CRC32 instruction when
/// the cpu has it; the portable table fallback produces identical values,
/// so files are byte-compatible across machines either way.
[[nodiscard]] std::uint32_t crc32c(std::string_view bytes);

/// What a snapshot knows about the raw input pair it was built from —
/// enough to recognise the exact same bytes (lengths + hashes), to
/// recognise an append (prefix hashes + the boundary flags below), and to
/// resume parsing at the right place (line counts offset tail
/// diagnostics so they cite absolute line numbers).
struct IngestState {
  std::uint64_t dst_len = 0;    ///< Dst input size in bytes
  std::uint64_t dst_hash = kFnv1aOffset;  ///< FNV-1a of the Dst bytes
  std::uint64_t dst_lines = 0;  ///< newline count in the Dst input
  std::uint64_t tle_len = 0;    ///< TLE input size in bytes
  std::uint64_t tle_lines = 0;  ///< newline count in the TLE input
  /// FNV-1a of the TLE bytes chained onto dst_hash — the combined content
  /// hash of the pair (and the value in the base header).
  std::uint64_t combined_hash = kFnv1aOffset;
  /// True when the input is empty or ends in '\n'.  A file that ends
  /// mid-line can have that line's meaning rewritten by an append, so
  /// growth past an unterminated prefix must reparse from scratch.
  bool dst_line_terminated = true;
  bool tle_line_terminated = true;
  /// True when the TLE pairing scanner ends with no line 1 pending (see
  /// tle::append_boundary_clean): a dangling line 1 was already reported
  /// against the prefix, and an append could pair it retroactively, so
  /// growth past an unclean boundary must reparse from scratch.
  bool tle_boundary_clean = true;
};

/// Compute the full IngestState of an input pair.
[[nodiscard]] IngestState ingest_state_of(std::string_view dst_bytes,
                                          std::string_view tle_bytes);

/// How the current inputs relate to the pair a snapshot was built from.
enum class InputMatch {
  kExact,     ///< byte-identical pair: plain cache hit
  kAppend,    ///< unchanged prefix plus appended bytes: delta-parse the tail
  kMismatch,  ///< anything else: reject and reparse from scratch
};

struct InputClassification {
  InputMatch match = InputMatch::kMismatch;
  /// State of the *current* inputs (what the next base/delta records).
  IngestState current;
};

/// Classify the current inputs against a snapshot's recorded state.
/// kAppend requires every grown input to have a line-terminated (and, for
/// TLE, pairing-clean) recorded prefix whose bytes hash identically.
[[nodiscard]] InputClassification classify_inputs(const IngestState& base,
                                                  std::string_view dst_bytes,
                                                  std::string_view tle_bytes);

/// Everything a warm start needs: the two parsed datasets plus the quality
/// report the text parse would have produced (so cache-hit runs report the
/// same ingestion outcome as cache-miss runs), the recorded input state,
/// and where the delta chain currently ends.
struct SnapshotData {
  spaceweather::DstIndex dst;
  tle::TleCatalog catalog;
  diag::DataQualityReport quality;
  IngestState state;
  /// Delta layers applied on top of the base (0 for a fresh base).
  std::uint32_t delta_layers = 0;
  /// FNV-1a of the last layer's (or base's) header bytes — what the next
  /// appended layer must carry as its chain hash.
  std::uint64_t chain_hash = 0;
  /// True when the file ended mid-layer (a torn append: partial trailing
  /// header, short payload, or a CRC-failing *final* layer) and the torn
  /// tail was dropped.  `state` then describes only the recovered prefix —
  /// the caller must treat the snapshot as behind the text inputs and must
  /// not append further layers to the file (they would sit after torn
  /// bytes the next load cannot walk past).
  bool tail_truncated = false;
};

/// The parsed artefacts of one tail parse, exactly what replaying the
/// append needs: the Dst values pushed (including any interpolated
/// repairs), every catalog record committed in file order, and the tail's
/// own quality report to merge into the cumulative one.
struct SnapshotDelta {
  IngestState state;  ///< cumulative input state *after* this layer
  std::uint64_t dst_prior_size = 0;  ///< Dst sample count before the append
  std::int64_t dst_start_hour = 0;   ///< series start hour after the append
  std::vector<double> dst_appended;
  std::vector<tle::Tle> tle_committed;
  diag::DataQualityReport quality_delta;
};

/// Snapshot file path for an input pair.  The name hashes the *paths* (not
/// the contents), so the same inputs map to a stable file whose stored
/// ingest state then decides hit/append/reject — editing an input is
/// detected as a stale snapshot at load time, not silently shadowed by a
/// new file.
[[nodiscard]] std::string snapshot_cache_path(const std::string& cache_dir,
                                              const std::string& dst_path,
                                              const std::string& tle_path);

/// Serialise a base snapshot (header + section table + sections, no delta
/// layers) in the current (v3) format.  Sections are encoded into
/// independent buffers over `num_threads` workers (the exec convention:
/// 0 = all hardware threads, 1 = serial); stripe boundaries are a pure
/// function of the catalog, so the bytes are identical at any value.
[[nodiscard]] std::string encode_snapshot(const SnapshotData& data,
                                          diag::ParsePolicy policy,
                                          int num_threads = 1);

/// Serialise a base snapshot in the legacy v2 monolithic-payload format.
/// Production code never writes v2 — this exists so compatibility tests
/// can fabricate the files a pre-v3 build would have left behind.
[[nodiscard]] std::string encode_snapshot_v2(const SnapshotData& data,
                                             diag::ParsePolicy policy);

/// Serialise one delta layer (header + payload) for appending to a file
/// whose last layer hashed to `prev_chain_hash`.
[[nodiscard]] std::string encode_snapshot_delta(const SnapshotDelta& delta,
                                                std::uint32_t layer_index,
                                                std::uint64_t prev_chain_hash,
                                                diag::ParsePolicy policy);

/// Parse snapshot bytes: the base plus every delta layer, applied in
/// order.  Returns nullopt — never throws — when anything disagrees:
/// magic, version, policy, payload sizes, CRCs, the layer chain, or a
/// payload that decodes inconsistently.
///
/// One deliberate exception to all-or-nothing: a torn *trailing* layer —
/// the signature a crashed append leaves behind (file ends mid-header,
/// mid-payload, or with a CRC-failing final layer) — truncates to the
/// valid base + layer prefix and sets `tail_truncated` instead of
/// rejecting.  Everything a torn append can produce is a pure prefix of
/// valid bytes, so the recovered prefix is exactly the pre-append
/// snapshot.  Corruption *inside* the prefix (bad mid-chain CRC, wrong
/// index/policy/chain hash with a complete header) still rejects the
/// whole file: that is bit rot or tampering, not a crash signature, and
/// the text source of truth is always available.
[[nodiscard]] std::optional<SnapshotData> decode_snapshot(
    std::string_view bytes, diag::ParsePolicy policy, int num_threads = 1);

/// Load a snapshot file.  A missing/unreadable file is a cache miss
/// (nullopt, no counter); a present-but-invalid file bumps
/// `snapshot.rejected` and also returns nullopt.  A torn trailing layer
/// (see decode_snapshot) loads the valid prefix and bumps
/// `snapshot.delta_truncated`.  Whether a structurally valid snapshot
/// matches the current inputs is the caller's decision (classify_inputs)
/// — the caller bumps `snapshot.loaded` only when it actually uses the
/// data.  A successful load adds the materialised record count to
/// `snapshot.load_records` (the warm-throughput numerator) and the v3
/// section count to the scheduling counter `snapshot.load_sections`.
/// Sections are validated and deserialised over `num_threads` workers;
/// results are bit-identical at any value.  Wall time lands in phase
/// "snapshot.load".
[[nodiscard]] std::optional<SnapshotData> load_snapshot(
    const std::string& path, diag::ParsePolicy policy,
    obs::Metrics* metrics = nullptr, int num_threads = 1);

/// Write a base snapshot file, discarding any existing delta chain
/// (atomically: per-writer temp file + rename, creating the cache
/// directory if needed).  The temp name embeds the pid and a process-wide
/// serial, so concurrent writers — several processes or threads sharing a
/// cache dir — never interleave writes into one temp file; the final
/// rename is atomic, so the last writer wins with a complete file.
/// Best-effort: returns false and bumps `snapshot.write_failed` on any
/// filesystem error instead of throwing — a read-only cache dir must not
/// break the pipeline.  Success bumps `snapshot.written` and adds the
/// file size to `snapshot.save_bytes`; the encoded bytes are committed
/// with one buffered write.  Sections are serialised over `num_threads`
/// workers (bytes identical at any value).  Wall time lands in phase
/// "snapshot.save".
bool save_snapshot(const std::string& path, const SnapshotData& data,
                   diag::ParsePolicy policy, obs::Metrics* metrics = nullptr,
                   int num_threads = 1);

/// Append one delta layer to an existing snapshot file.  Best-effort like
/// save_snapshot (failure bumps `snapshot.write_failed`); success bumps
/// `snapshot.delta_written`.  A torn append is caught by the next load's
/// size/CRC checks and falls back to a full reparse.  Wall time lands in
/// phase "snapshot.save".
bool append_snapshot_delta(const std::string& path, const SnapshotDelta& delta,
                           std::uint32_t layer_index,
                           std::uint64_t prev_chain_hash,
                           diag::ParsePolicy policy,
                           obs::Metrics* metrics = nullptr);

}  // namespace cosmicdance::io
