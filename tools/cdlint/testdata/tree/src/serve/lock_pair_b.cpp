// cdlint corpus: the reverse nesting half of the lock-order cycle (R10)
// seeded in lock_pair_a.cpp.
#include <mutex>

extern std::mutex order_a_;
extern std::mutex order_b_;
extern std::mutex consistent_c_;
extern std::mutex consistent_d_;
extern std::mutex allowed_e_;
extern std::mutex allowed_f_;

void nest_ba() {
  std::lock_guard<std::mutex> outer(order_b_);
  std::lock_guard<std::mutex> inner(order_a_);  // positive: reversed in lock_pair_a.cpp
}

void nest_cd_again() {
  std::lock_guard<std::mutex> outer(consistent_c_);
  std::lock_guard<std::mutex> inner(consistent_d_);  // negative: same order everywhere
}

void nest_fe() {
  std::lock_guard<std::mutex> outer(allowed_f_);
  // cdlint: allow(lock-order-cycle) corpus seed: reversed pair runs in startup only, single-threaded
  std::lock_guard<std::mutex> inner(allowed_e_);
}
