file(REMOVE_RECURSE
  "CMakeFiles/micro_sgp4.dir/micro_sgp4.cpp.o"
  "CMakeFiles/micro_sgp4.dir/micro_sgp4.cpp.o.d"
  "micro_sgp4"
  "micro_sgp4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sgp4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
