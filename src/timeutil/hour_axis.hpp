// Integral hour axis used by the hourly Dst series.
//
// The Dst archive is strictly hourly; representing its timestamps as an
// integer count of hours since 2000-01-01T00:00 UTC avoids floating-point
// drift when aligning multi-year series and makes storm segmentation exact.
#pragma once

#include <cstdint>

#include "timeutil/datetime.hpp"

namespace cosmicdance::timeutil {

/// Hours elapsed since 2000-01-01T00:00:00 UTC (may be negative for the
/// historical 50-year record).
using HourIndex = std::int64_t;

/// Floor a Julian date to its containing hour index.
[[nodiscard]] HourIndex hour_index_from_julian(double jd) noexcept;

/// Julian date of the start of the given hour.
[[nodiscard]] double julian_from_hour_index(HourIndex hour) noexcept;

/// Hour index of a civil timestamp (floored to the hour).
[[nodiscard]] HourIndex hour_index_from_datetime(const DateTime& dt);

/// Civil timestamp of the start of the given hour.
[[nodiscard]] DateTime datetime_from_hour_index(HourIndex hour);

}  // namespace cosmicdance::timeutil
