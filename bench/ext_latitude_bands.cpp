// Extension (paper §6, "Finer granularity"): latitude-band analysis.
// Geolocates every TLE at its epoch via SGP4 and aggregates drag per
// |latitude| band across the May-2024 storm window, demonstrating the
// machinery a latitude-resolved study needs once sub-hourly TLEs exist.
#include <iostream>

#include "bench_common.hpp"
#include "core/latitude.hpp"
#include "io/table.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst = bench::superstorm_dst();
  auto config = simulation::scenario::may_2024(&dst, /*fleet_size=*/600);
  auto run = simulation::ConstellationSimulator(config).run();
  const core::CosmicDance pipeline(dst, std::move(run.catalog));

  auto report = [&](const char* label, double jd_lo, double jd_hi) {
    io::print_heading(std::cout, label);
    const auto bands =
        core::latitude_band_drag(pipeline.tracks(), jd_lo, jd_hi, 6);
    io::TablePrinter table({"lat_band_deg", "samples", "dwell_frac",
                            "median_B*", "p95_B*"});
    for (const auto& band : bands) {
      table.add_row({io::TablePrinter::num(band.lat_lo_deg, 0) + "-" +
                         io::TablePrinter::num(band.lat_hi_deg, 0),
                     std::to_string(band.samples),
                     io::TablePrinter::num(band.dwell_fraction, 3),
                     io::TablePrinter::num(band.median_bstar * 1e4, 2) + "e-4",
                     io::TablePrinter::num(band.p95_bstar * 1e4, 2) + "e-4"});
    }
    table.print(std::cout);
  };

  report("Quiet week (May 1-8)",
         timeutil::to_julian(timeutil::make_datetime(2024, 5, 1)),
         timeutil::to_julian(timeutil::make_datetime(2024, 5, 8)));
  report("Storm days (May 10-13)",
         timeutil::to_julian(timeutil::make_datetime(2024, 5, 10)),
         timeutil::to_julian(timeutil::make_datetime(2024, 5, 13)));

  bench::note("physics check: dwell concentrates toward the 53-deg band");
  bench::note("(orbital turning latitude); nothing above 60 deg for this");
  bench::note("fleet.  Storm days lift B* across all bands.  A latitude-");
  bench::note("dependent response needs latitude-resolved density data the");
  bench::note("hourly Dst index cannot provide (the paper's point).");
  return 0;
}
