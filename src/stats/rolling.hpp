// Windowed statistics over irregular time series.
//
// TLE samples arrive at irregular intervals (the paper: <1 h to 154 h), so
// the long-term median altitude and the pre/post event aggregates need
// time-window (not count-window) semantics.
#pragma once

#include <span>
#include <vector>

namespace cosmicdance::stats {

/// A (time, value) observation of an irregular series; times are in
/// arbitrary-but-consistent units (the pipeline uses Julian dates).
struct TimedValue {
  double time = 0.0;
  double value = 0.0;
};

/// Median of values with time in [t_lo, t_hi).  Throws ValidationError when
/// the window is empty.  `series` must be sorted by time.
[[nodiscard]] double window_median(std::span<const TimedValue> series, double t_lo,
                                   double t_hi);

/// Mean over the same window semantics.
[[nodiscard]] double window_mean(std::span<const TimedValue> series, double t_lo,
                                 double t_hi);

/// Number of observations in [t_lo, t_hi).
[[nodiscard]] std::size_t window_count(std::span<const TimedValue> series,
                                       double t_lo, double t_hi) noexcept;

/// Last observation with time <= t, or nullptr when none exists.
[[nodiscard]] const TimedValue* last_at_or_before(std::span<const TimedValue> series,
                                                  double t) noexcept;

/// First observation with time >= t, or nullptr when none exists.
[[nodiscard]] const TimedValue* first_at_or_after(std::span<const TimedValue> series,
                                                  double t) noexcept;

/// Centered rolling median: for each point, the median of all values within
/// +/- half_width time units.  Output has the same length/order as input.
[[nodiscard]] std::vector<double> rolling_median(std::span<const TimedValue> series,
                                                 double half_width);

}  // namespace cosmicdance::stats
