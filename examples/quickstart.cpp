// Quickstart: the minimal CosmicDance workflow.
//
//  1. obtain an hourly Dst series            (here: the bundled synthesiser)
//  2. obtain a TLE catalog                   (here: the bundled constellation
//                                             simulator; in production, files
//                                             from CelesTrak / Space-Track via
//                                             CosmicDance::from_files)
//  3. build the pipeline: it cleans the TLEs (outliers, orbit raising) and
//     orders both datasets in time
//  4. ask happens-closely-after questions.
#include <cstdio>
#include <iostream>
#include <algorithm>

#include "core/pipeline.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"
#include "stats/descriptive.hpp"

using namespace cosmicdance;

int main() {
  // -- 1. solar-activity data -------------------------------------------------
  const spaceweather::DstIndex dst =
      spaceweather::DstGenerator(
          spaceweather::DstGenerator::paper_window_2020_2024())
          .generate();
  std::printf("Dst series: %zu hourly samples starting %s\n", dst.size(),
              dst.start_datetime().to_string().c_str());

  // -- 2. satellite trajectory data -------------------------------------------
  auto scenario = simulation::scenario::paper_window(&dst, /*per_batch=*/3,
                                                     /*cadence_days=*/21.0);
  auto run = simulation::ConstellationSimulator(scenario).run();
  std::printf("TLE catalog: %zu records for %zu satellites\n",
              run.catalog.record_count(), run.catalog.satellite_count());

  // -- 3. the pipeline ---------------------------------------------------------
  const core::CosmicDance pipeline(dst, std::move(run.catalog));
  std::printf("Cleaned tracks: %zu satellites\n", pipeline.tracks().size());

  // -- 4. questions -------------------------------------------------------------
  const auto storms = pipeline.storms();
  std::printf("\nDetected %zu geomagnetic storms; strongest five:\n",
              storms.size());
  auto sorted = storms;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.peak_dst_nt < b.peak_dst_nt; });
  for (std::size_t i = 0; i < sorted.size() && i < 5; ++i) {
    std::printf("  %s  peak %7.1f nT  (%s, %ld h)\n",
                sorted[i].start_datetime().to_string().c_str(),
                sorted[i].peak_dst_nt,
                spaceweather::to_string(sorted[i].category).c_str(),
                sorted[i].duration_hours());
  }

  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  const auto changes = pipeline.altitude_changes_for_storms(p95);
  if (!changes.empty()) {
    const auto s = stats::summarize(changes);
    std::printf(
        "\nAltitude change within 30 days after >95th-ptile storms\n"
        "  (%zu satellite-event samples): median %.2f km, p95 %.2f km, "
        "max %.1f km\n",
        s.count, s.median, s.p95, s.max);
  }
  std::printf("\nDone. See storm_impact_report / superstorm_replay for more.\n");
  return 0;
}
