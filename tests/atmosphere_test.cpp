#include <gtest/gtest.h>

#include <cmath>

#include "atmosphere/drag.hpp"
#include "atmosphere/exponential.hpp"
#include "atmosphere/storm_density.hpp"
#include "common/error.hpp"
#include "spaceweather/dst_index.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance::atmosphere {
namespace {

TEST(ExponentialTest, SeaLevelDensity) {
  EXPECT_NEAR(density_kg_m3(0.0), 1.225, 1e-6);
}

TEST(ExponentialTest, TableAnchors) {
  // Band base values are exact at the band edges.
  EXPECT_NEAR(density_kg_m3(500.0), 6.967e-13, 1e-16);
  EXPECT_NEAR(density_kg_m3(1000.0), 3.019e-15, 1e-18);
  EXPECT_NEAR(density_kg_m3(150.0), 2.070e-9, 1e-12);
}

TEST(ExponentialTest, MonotoneDecreasing) {
  double previous = density_kg_m3(0.0);
  for (double h = 5.0; h <= 1200.0; h += 5.0) {
    const double rho = density_kg_m3(h);
    EXPECT_LT(rho, previous) << "altitude " << h;
    previous = rho;
  }
}

TEST(ExponentialTest, ContinuousAcrossBands) {
  // No large jumps at band boundaries.
  for (const double edge : {25.0, 100.0, 150.0, 300.0, 500.0, 900.0}) {
    const double below = density_kg_m3(edge - 0.01);
    const double above = density_kg_m3(edge + 0.01);
    EXPECT_NEAR(above / below, 1.0, 0.05) << "edge " << edge;
  }
}

TEST(ExponentialTest, ClampsNegativeAltitude) {
  EXPECT_DOUBLE_EQ(density_kg_m3(-5.0), density_kg_m3(0.0));
}

TEST(ExponentialTest, ExtrapolatesAbove1000) {
  EXPECT_LT(density_kg_m3(1500.0), density_kg_m3(1000.0));
  EXPECT_GT(density_kg_m3(1500.0), 0.0);
}

TEST(ExponentialTest, ScaleHeightGrowsWithAltitude) {
  EXPECT_LT(scale_height_km(100.0), scale_height_km(500.0));
  EXPECT_LT(scale_height_km(500.0), scale_height_km(1000.0));
}

TEST(StormDensityTest, QuietIsUnity) {
  EXPECT_DOUBLE_EQ(storm_enhancement_factor(550.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(storm_enhancement_factor(550.0, -20.0), 1.0);
  EXPECT_DOUBLE_EQ(storm_enhancement_factor(550.0, 15.0), 1.0);
}

TEST(StormDensityTest, CalibrationAnchors) {
  // ~5x at 550 km for a -400 nT super-storm (Starlink's May-2024 report).
  EXPECT_NEAR(storm_enhancement_factor(550.0, -400.0), 5.0, 0.5);
  // Roughly 1.8-2x for a -100 nT moderate storm.
  const double moderate = storm_enhancement_factor(550.0, -100.0);
  EXPECT_GT(moderate, 1.5);
  EXPECT_LT(moderate, 2.2);
}

TEST(StormDensityTest, GrowsWithIntensityAndAltitude) {
  EXPECT_LT(storm_enhancement_factor(550.0, -100.0),
            storm_enhancement_factor(550.0, -300.0));
  EXPECT_LT(storm_enhancement_factor(300.0, -200.0),
            storm_enhancement_factor(800.0, -200.0));
}

TEST(StormDensityTest, AltitudeScaleClamped) {
  const StormDensityConfig config;
  const double low = storm_enhancement_factor(10.0, -200.0, config);
  const double expected_min =
      1.0 + config.sensitivity_at_reference * config.min_scale *
                (200.0 - config.quiet_offset_nt) / 100.0;
  EXPECT_NEAR(low, expected_min, 1e-12);
}

TEST(StormDensityModelTest, UsesDstSeries) {
  const spaceweather::DstIndex dst(timeutil::make_datetime(2024, 5, 10),
                                   {-10.0, -400.0, -10.0});
  const StormDensityModel model(&dst);
  const double quiet_jd = timeutil::to_julian(timeutil::make_datetime(2024, 5, 10, 0, 30));
  const double storm_jd = timeutil::to_julian(timeutil::make_datetime(2024, 5, 10, 1, 30));
  EXPECT_DOUBLE_EQ(model.factor(550.0, quiet_jd), 1.0);
  EXPECT_GT(model.factor(550.0, storm_jd), 4.0);
  EXPECT_NEAR(model.density_kg_m3(550.0, storm_jd) /
                  atmosphere::density_kg_m3(550.0),
              model.factor(550.0, storm_jd), 1e-12);
}

TEST(StormDensityModelTest, OutsideSeriesIsQuiet) {
  const spaceweather::DstIndex dst(timeutil::make_datetime(2024, 5, 10), {-400.0});
  const StormDensityModel model(&dst);
  const double before = timeutil::to_julian(timeutil::make_datetime(2024, 5, 9));
  EXPECT_DOUBLE_EQ(model.factor(550.0, before), 1.0);
  const StormDensityModel null_model(nullptr);
  EXPECT_DOUBLE_EQ(null_model.factor(550.0, before), 1.0);
}

TEST(DragTest, BallisticCoefficient) {
  EXPECT_NEAR(ballistic_coefficient(2.2, 20.0, 260.0), 0.1692, 1e-4);
  EXPECT_THROW(static_cast<void>(ballistic_coefficient(2.2, 20.0, 0.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(ballistic_coefficient(2.2, -1.0, 260.0)), ValidationError);
  EXPECT_THROW(static_cast<void>(ballistic_coefficient(0.0, 20.0, 260.0)), ValidationError);
}

TEST(DragTest, AccelerationQuadraticInSpeed) {
  const double a1 = drag_acceleration_ms2(1e-12, 7500.0, 0.01);
  const double a2 = drag_acceleration_ms2(1e-12, 15000.0, 0.01);
  EXPECT_NEAR(a2 / a1, 4.0, 1e-12);
  EXPECT_NEAR(a1, 0.5 * 1e-12 * 7500.0 * 7500.0 * 0.01, 1e-20);
}

TEST(DragTest, DecayRateRealisticAtStarlinkShell) {
  // Quiet-time decay at 550 km with a knife-edge Starlink: ~metres/day.
  const double rho = density_kg_m3(550.0);
  const double rate = circular_decay_rate_km_per_day(550.0, rho, 0.004);
  EXPECT_LT(rate, 0.0);
  EXPECT_GT(rate, -0.05);  // shallower than 50 m/day
  // Tumbling at 300 km: km-per-day scale reentry spiral.
  const double spiral =
      circular_decay_rate_km_per_day(300.0, density_kg_m3(300.0), 0.3);
  EXPECT_LT(spiral, -1.0);
}

TEST(DragTest, DecayScalesLinearlyWithDensityAndBallistic) {
  const double base = circular_decay_rate_km_per_day(550.0, 1e-13, 0.01);
  EXPECT_NEAR(circular_decay_rate_km_per_day(550.0, 2e-13, 0.01) / base, 2.0,
              1e-9);
  EXPECT_NEAR(circular_decay_rate_km_per_day(550.0, 1e-13, 0.02) / base, 2.0,
              1e-9);
}

TEST(DragTest, BstarBridgeRoundTrip) {
  const double ballistic = 0.004;
  const double bstar = bstar_from_ballistic(ballistic);
  EXPECT_NEAR(ballistic_from_bstar(bstar), ballistic, 1e-15);
  // Typical Starlink B* magnitude: a few 1e-4 per Earth radius.
  EXPECT_GT(bstar, 1e-4);
  EXPECT_LT(bstar, 1e-3);
}

TEST(DragTest, BstarScalesWithDensityRatio) {
  EXPECT_NEAR(bstar_from_ballistic(0.004, 5.0) / bstar_from_ballistic(0.004, 1.0),
              5.0, 1e-12);
}

}  // namespace
}  // namespace cosmicdance::atmosphere
