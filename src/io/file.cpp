#include "io/file.hpp"

#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define COSMICDANCE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/error.hpp"

namespace cosmicdance::io {
namespace {

/// Read a whole file into a pre-sized string (one allocation, sized from
/// the stream length instead of growing through an ostringstream).
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open file: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::string content;
  if (size > 0) {
    content.resize(static_cast<std::size_t>(size));
    in.read(content.data(), size);
    content.resize(static_cast<std::size_t>(in.gcount()));
  }
  if (in.bad()) throw IoError("failed reading file: " + path);
  return content;
}

}  // namespace

std::string read_file(const std::string& path) { return slurp(path); }

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open file: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open file for writing: " + path);
  out << content;
  if (!out) throw IoError("failed writing file: " + path);
}

void append_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw IoError("cannot open file for appending: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw IoError("failed appending to file: " + path);
}

MappedFile::MappedFile(const std::string& path, Mode mode) {
#if COSMICDANCE_HAVE_MMAP
  if (mode == Mode::kAuto) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw IoError("cannot open file: " + path);
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0 || !S_ISREG(st.st_mode)) {
      ::close(fd);
      // Not a regular file (pipe, device...): the read path handles it.
      fallback_ = slurp(path);
      view_ = fallback_;
      return;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      view_ = std::string_view{};
      return;
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base != MAP_FAILED) {
      map_ = base;
      map_size_ = size;
      view_ = std::string_view(static_cast<const char*>(base), size);
      return;
    }
    // mmap refused (e.g. special filesystem): fall through to the read path.
  }
#else
  static_cast<void>(mode);
#endif
  fallback_ = slurp(path);
  view_ = fallback_;
}

MappedFile::~MappedFile() { release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      fallback_(std::move(other.fallback_)) {
  view_ = map_ != nullptr
              ? std::string_view(static_cast<const char*>(map_), map_size_)
              : std::string_view(fallback_);
  other.view_ = {};
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    release();
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    fallback_ = std::move(other.fallback_);
    view_ = map_ != nullptr
                ? std::string_view(static_cast<const char*>(map_), map_size_)
                : std::string_view(fallback_);
    other.view_ = {};
  }
  return *this;
}

void MappedFile::release() noexcept {
#if COSMICDANCE_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
  map_ = nullptr;
  map_size_ = 0;
  view_ = {};
}

}  // namespace cosmicdance::io
