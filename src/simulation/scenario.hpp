// Pre-built simulation scenarios, one per experiment family (see DESIGN.md).
//
// Every scenario takes a non-owning pointer to the Dst series driving it;
// the caller generates the series (spaceweather::DstGenerator presets) and
// must keep it alive for the lifetime of the returned config / the run.
#pragma once

#include "simulation/constellation.hpp"

namespace cosmicdance::simulation::scenario {

/// The paper's measurement window (launches from 2019-11-11, analysis
/// Jan 2020 - early May 2024), scaled down by shrinking batch size.  The
/// default (8 satellites every 12 days, ~1090 launched) keeps bench runtimes
/// in seconds while leaving enough satellites for 1%-tail statistics.
[[nodiscard]] ConstellationConfig paper_window(const spaceweather::DstIndex* dst,
                                               int satellites_per_batch = 8,
                                               double cadence_days = 12.0,
                                               std::uint64_t seed = 7);

/// The very first Starlink launch, L1 (2019-11-11): the paper's Fig 9
/// follows 43 of those satellites through staging, raising and operations.
/// Catalog numbers start at the real 44713.
[[nodiscard]] ConstellationConfig launch_l1(const spaceweather::DstIndex* dst,
                                            std::uint64_t seed = 11);

/// The May-2024 super-storm window (mid-April through May 2024) over an
/// established fleet, with Starlink's proactive storm response enabled —
/// Fig 7's setting.  `fleet_size` defaults to a scale-down of the ~6000
/// satellites tracked at the time.
[[nodiscard]] ConstellationConfig may_2024(const spaceweather::DstIndex* dst,
                                           int fleet_size = 1500,
                                           std::uint64_t seed = 24);

/// Three satellites with the paper's Fig 3 storylines, pinned to the real
/// NORAD ids: #45766 (drag spike + decay onset after the 2023-03-24 storm),
/// #45400 (decay onset after the same storm, modest drag change) and
/// #44943 (sharp ~150 km decay after the 2024-03-03 storm).
[[nodiscard]] ConstellationConfig figure3(const spaceweather::DstIndex* dst,
                                          std::uint64_t seed = 3);

/// The February 2022 Starlink incident (paper §2/§A.1): a batch of 49
/// satellites deployed to a very low ~210 km staging orbit right before a
/// moderate geomagnetic storm; drag overwhelmed 38 of them before they
/// could raise.  Window: mid-Jan to April 2022.
[[nodiscard]] ConstellationConfig feb_2022(const spaceweather::DstIndex* dst,
                                           std::uint64_t seed = 22);

}  // namespace cosmicdance::simulation::scenario
