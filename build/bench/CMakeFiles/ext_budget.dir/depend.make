# Empty dependencies file for ext_budget.
# This may be replaced when dependencies are built.
