// Tests for the Kessler conjunction-rate estimator and manoeuvre detection.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/kessler.hpp"
#include "core/maneuvers.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance::core {
namespace {

const double kJd0 = timeutil::to_julian(timeutil::make_datetime(2023, 6, 1));

TrajectorySample sample_at(double jd, double altitude) {
  TrajectorySample s;
  s.epoch_jd = jd;
  s.altitude_km = altitude;
  s.bstar = 2e-4;
  return s;
}

// ------------------------------- Kessler ------------------------------------

TEST(KesslerTest, ShellDensityDimensions) {
  const KesslerConfig config;
  const double n = shell_spatial_density(550.0, config);
  // 1600 satellites in a 5-km-thick shell at r ~ 6928 km:
  // V = 4*pi*r^2*dh ~ 3.0e9 km^3 -> n ~ 5.3e-7 /km^3.
  EXPECT_NEAR(n, 1600.0 / (4.0 * 3.14159265 * 6928.1 * 6928.1 * 5.0), 1e-9);
  // Density drops with altitude (bigger sphere).
  EXPECT_GT(shell_spatial_density(400.0, config), shell_spatial_density(900.0, config));
}

TEST(KesslerTest, CollisionRatePlausiblyTiny) {
  const KesslerConfig config;
  const double rate = collision_rate_per_dwell_year(550.0, config);
  // n*sigma*v ~ 5.3e-7 * 1e-4 * 10 km/s -> ~1.7e-2 / year of dwell: rare
  // but not negligible for long dwell — consistent with the conjunction
  // screening the operators run.
  EXPECT_GT(rate, 1e-4);
  EXPECT_LT(rate, 1.0);
}

TEST(KesslerTest, ExposureScalesWithDwell) {
  // One trespassing satellite parked inside a foreign shell vs none.
  KesslerConfig config;
  config.shells.shell_altitudes_km = {540.0, 550.0};
  config.shells.half_width_km = 2.0;

  std::vector<SatelliteTrack> tracks;
  std::vector<TrajectorySample> samples;
  // Home shell 550 (early samples), then 10 days inside the 540 band.
  for (double t = 0.0; t < 10.0; t += 0.5) samples.push_back(sample_at(kJd0 + t, 550.0));
  for (double t = 10.0; t < 20.0; t += 0.5) samples.push_back(sample_at(kJd0 + t, 540.0));
  tracks.emplace_back(1, std::move(samples));

  const auto exposure = conjunction_exposure(tracks, kJd0, kJd0 + 30.0, config);
  EXPECT_NEAR(exposure.dwell_days, 10.0, 1.0);
  EXPECT_GT(exposure.expected_collisions, 0.0);
  const auto quiet = conjunction_exposure(tracks, kJd0, kJd0 + 9.0, config);
  EXPECT_DOUBLE_EQ(quiet.dwell_days, 0.0);
  EXPECT_DOUBLE_EQ(quiet.expected_collisions, 0.0);
}

TEST(KesslerTest, ExposureProportionalToCrossSection) {
  KesslerConfig small;
  small.shells.shell_altitudes_km = {540.0, 550.0};
  KesslerConfig big = small;
  big.cross_section_km2 *= 4.0;

  std::vector<SatelliteTrack> tracks;
  std::vector<TrajectorySample> samples;
  for (double t = 0.0; t < 5.0; t += 0.5) samples.push_back(sample_at(kJd0 + t, 550.0));
  for (double t = 5.0; t < 15.0; t += 0.5) samples.push_back(sample_at(kJd0 + t, 540.0));
  tracks.emplace_back(1, std::move(samples));

  const double ratio =
      conjunction_exposure(tracks, kJd0, kJd0 + 20.0, big).expected_collisions /
      conjunction_exposure(tracks, kJd0, kJd0 + 20.0, small).expected_collisions;
  EXPECT_NEAR(ratio, 4.0, 1e-9);
}

// ------------------------------ manoeuvres ----------------------------------

TEST(ManeuverTest, DetectsImpulsiveStep) {
  std::vector<TrajectorySample> samples;
  for (double t = 0.0; t < 5.0; t += 0.5) samples.push_back(sample_at(kJd0 + t, 550.0));
  // A +1.2 km boost between two records half a day apart.
  for (double t = 5.0; t < 10.0; t += 0.5) samples.push_back(sample_at(kJd0 + t, 551.2));
  const SatelliteTrack track(7, std::move(samples));
  const auto events = detect_maneuvers(track);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].catalog_number, 7);
  EXPECT_NEAR(events[0].delta_km, 1.2, 1e-9);
  EXPECT_GT(events[0].rate_km_per_day, 2.0);
}

TEST(ManeuverTest, SlowDecayIsNotAManeuver) {
  std::vector<TrajectorySample> samples;
  // 0.4 km/day decay: each half-day step is 0.2 km (< min_step) and even
  // across larger gaps the rate stays below min_rate.
  for (double t = 0.0; t < 30.0; t += 0.5) {
    samples.push_back(sample_at(kJd0 + t, 550.0 - 0.4 * t));
  }
  EXPECT_TRUE(detect_maneuvers(SatelliteTrack(7, std::move(samples))).empty());
}

TEST(ManeuverTest, FastUncontrolledDecayExceedsRateButFlagsIt) {
  // A 3 km/day plunge *is* flagged — by design: the detector separates
  // discrete/fast changes from quiet drag, and callers cross-check with
  // drag (B*) to tell propulsion from tumbling.
  std::vector<TrajectorySample> samples;
  for (double t = 0.0; t < 10.0; t += 0.5) {
    samples.push_back(sample_at(kJd0 + t, 550.0 - 3.0 * t));
  }
  EXPECT_FALSE(detect_maneuvers(SatelliteTrack(7, std::move(samples))).empty());
}

TEST(ManeuverTest, LongGapsNotAttributed) {
  std::vector<TrajectorySample> samples;
  samples.push_back(sample_at(kJd0, 550.0));
  samples.push_back(sample_at(kJd0 + 5.0, 556.0));  // 5-day gap > max 3
  EXPECT_TRUE(detect_maneuvers(SatelliteTrack(7, std::move(samples))).empty());
}

TEST(ManeuverTest, PooledDetectionSorted) {
  std::vector<SatelliteTrack> tracks;
  for (int sat = 0; sat < 3; ++sat) {
    std::vector<TrajectorySample> samples;
    for (double t = 0.0; t < 10.0; t += 0.5) {
      double altitude = 550.0;
      if (t > 3.0 + sat) altitude = 551.0;  // one boost per satellite
      samples.push_back(sample_at(kJd0 + t, altitude));
    }
    tracks.emplace_back(100 + sat, std::move(samples));
  }
  const auto events = detect_maneuvers(tracks);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LE(events[0].jd, events[1].jd);
  EXPECT_LE(events[1].jd, events[2].jd);
}

TEST(ManeuverTest, ContaminationEstimate) {
  std::vector<SatelliteTrack> tracks;
  // Satellite A manoeuvres 2 days after the event; satellite B never does.
  {
    std::vector<TrajectorySample> samples;
    for (double t = -5.0; t < 10.0; t += 0.5) {
      samples.push_back(sample_at(kJd0 + t, t > 2.0 ? 551.5 : 550.0));
    }
    tracks.emplace_back(1, std::move(samples));
  }
  {
    std::vector<TrajectorySample> samples;
    for (double t = -5.0; t < 10.0; t += 0.5) {
      samples.push_back(sample_at(kJd0 + t, 550.0));
    }
    tracks.emplace_back(2, std::move(samples));
  }
  const std::vector<double> events{kJd0};
  const auto contamination = maneuver_contamination(tracks, events, 7.0);
  EXPECT_EQ(contamination.candidates, 2u);
  EXPECT_EQ(contamination.near_maneuver, 1u);
  EXPECT_DOUBLE_EQ(contamination.fraction(), 0.5);
  // Window ending before the manoeuvre: clean.
  EXPECT_EQ(maneuver_contamination(tracks, events, 1.5).near_maneuver, 0u);
}

}  // namespace
}  // namespace cosmicdance::core
