# Empty compiler generated dependencies file for fig10_tle_cleaning.
# This may be replaced when dependencies are built.
