file(REMOVE_RECURSE
  "libcd_atmosphere.a"
)
