#include "io/args.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace cosmicdance::io {

ArgParser::ArgParser(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(std::move(tokens));
}

ArgParser::ArgParser(std::vector<std::string> tokens) { parse(std::move(tokens)); }

void ArgParser::parse(std::vector<std::string> tokens) {
  std::size_t i = 0;
  while (i < tokens.size()) {
    const std::string& token = tokens[i];
    if (token.rfind("--", 0) == 0) {
      const std::string name = token.substr(2);
      if (name.empty()) throw ParseError("bare '--' is not a valid option");
      present_[name] = true;
      if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
        values_[name] = tokens[i + 1];
        i += 2;
      } else {
        ++i;
      }
    } else {
      if (command_.empty() && positionals_.empty()) {
        command_ = token;
      } else {
        positionals_.push_back(token);
      }
      ++i;
    }
  }
}

std::optional<std::string> ArgParser::option(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::option_or(const std::string& name,
                                 std::string fallback) const {
  const auto value = option(name);
  return value.has_value() ? *value : std::move(fallback);
}

double ArgParser::number_or(const std::string& name, double fallback) const {
  const auto value = option(name);
  if (!value.has_value()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    throw ParseError("option --" + name + " expects a number, got '" + *value +
                     "'");
  }
  return parsed;
}

long ArgParser::integer_or(const std::string& name, long fallback) const {
  const auto value = option(name);
  if (!value.has_value()) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    throw ParseError("option --" + name + " expects an integer, got '" + *value +
                     "'");
  }
  return parsed;
}

long ArgParser::nonnegative_integer_or(const std::string& name,
                                       long fallback) const {
  const long parsed = integer_or(name, fallback);
  if (parsed < 0) {
    throw ParseError("option --" + name + " expects a non-negative integer, " +
                     "got '" + std::to_string(parsed) + "'");
  }
  return parsed;
}

bool ArgParser::flag(const std::string& name) const {
  return present_.count(name) > 0;
}

void ArgParser::check_known(const std::vector<std::string>& known) const {
  for (const auto& [name, seen] : present_) {
    bool ok = false;
    for (const std::string& candidate : known) {
      if (name == candidate) {
        ok = true;
        break;
      }
    }
    if (!ok) throw ParseError("unknown option --" + name);
  }
}

}  // namespace cosmicdance::io
