// Fleet-scale batch SGP4 propagation (DESIGN.md §16).
//
// BatchPropagator runs the element recovery exactly once per TLE and stores
// the resulting constants in structure-of-arrays form, split by consumer:
// a dense CommonConstants row per satellite, a dense NearSpaceConstants row
// (all-zero for simple-drag orbits), and a *compacted* DeepSpaceConstants
// table indexed per row — LEO-heavy catalogs pay nothing for the ~50-double
// deep-space block they never read.  Propagation fans the (row × epoch)
// grid out over exec::parallel_for by row; each row sweeps its epochs
// serially with a row-local ResonanceState, so outputs are bit-identical at
// any --threads value and under any epoch ordering (the memo is exact; see
// ResonanceState in sgp4.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sgp4/sgp4.hpp"
#include "tle/catalog.hpp"

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::sgp4 {

/// One TLE the batch constructor rejected (element recovery threw); the
/// row is skipped rather than poisoning the whole batch.
struct BatchInitFailure {
  int catalog_number = 0;
  std::string message;
};

/// The (row × epoch) propagation grid, row-major.
struct BatchResult {
  std::size_t rows = 0;
  std::size_t epochs = 0;
  /// states[row * epochs + e]; zero where the matching status is not kOk.
  std::vector<orbit::StateVector> states;
  std::vector<Sgp4Status> statuses;  ///< same layout as states

  [[nodiscard]] const orbit::StateVector& state(std::size_t row,
                                                std::size_t epoch) const noexcept {
    return states[row * epochs + epoch];
  }
  [[nodiscard]] Sgp4Status status(std::size_t row,
                                  std::size_t epoch) const noexcept {
    return statuses[row * epochs + epoch];
  }
  /// Grid cells with any non-kOk status (kDecayed included).
  [[nodiscard]] std::size_t error_count() const noexcept;
};

/// Init-once / propagate-many SGP4 over a whole catalog.
class BatchPropagator {
 public:
  /// Recover constants for every TLE (one row each, input order).  TLEs
  /// whose recovery fails are recorded in init_failures() and skipped.
  [[nodiscard]] static BatchPropagator from_tles(
      std::span<const tle::Tle> tles,
      const orbit::GravityModel& gravity = orbit::wgs72());

  /// One row per satellite: the latest record of each history, in catalog
  /// (ascending NORAD number) order.
  [[nodiscard]] static BatchPropagator from_catalog(
      const tle::TleCatalog& catalog,
      const orbit::GravityModel& gravity = orbit::wgs72());

  [[nodiscard]] std::size_t rows() const noexcept { return common_.size(); }
  [[nodiscard]] bool empty() const noexcept { return common_.empty(); }
  [[nodiscard]] int catalog_number(std::size_t row) const noexcept {
    return common_[row].catalog_number;
  }
  [[nodiscard]] double epoch_jd(std::size_t row) const noexcept {
    return common_[row].epoch_jd;
  }
  [[nodiscard]] bool deep_space(std::size_t row) const noexcept {
    return common_[row].deep_space;
  }
  [[nodiscard]] const orbit::GravityModel& gravity(std::size_t row) const noexcept {
    return common_[row].gravity;
  }
  /// Rows on the SDP4 deep-space path.
  [[nodiscard]] std::size_t deep_space_rows() const noexcept {
    return deep_.size();
  }
  [[nodiscard]] const std::vector<BatchInitFailure>& init_failures()
      const noexcept {
    return failures_;
  }

  /// Propagate every row to every absolute Julian date in `epochs_jd`
  /// (visited in the given order — any order yields bit-identical output).
  /// num_threads follows the exec convention (0 = all hardware threads,
  /// 1 = serial); `metrics` (optional) records sgp4.batch_* counters and
  /// the sgp4.batch_propagate phase.
  [[nodiscard]] BatchResult propagate_jd(std::span<const double> epochs_jd,
                                         int num_threads = 0,
                                         obs::Metrics* metrics = nullptr) const;

  /// As above with a grid of offsets (minutes) relative to each row's own
  /// TLE epoch — the natural axis for verification sweeps and benchmarks.
  [[nodiscard]] BatchResult propagate_minutes(
      std::span<const double> tsince_minutes, int num_threads = 0,
      obs::Metrics* metrics = nullptr) const;

  /// Single-cell convenience mirroring Sgp4Propagator::try_propagate_minutes
  /// for cross-checking one row against the batch grid.
  [[nodiscard]] Sgp4Status try_propagate_row(std::size_t row,
                                             double tsince_minutes,
                                             orbit::StateVector& out)
      const noexcept;

 private:
  BatchPropagator() = default;

  template <typename TsinceForRow>
  [[nodiscard]] BatchResult propagate_grid(std::size_t epoch_count,
                                           const TsinceForRow& tsince,
                                           int num_threads,
                                           obs::Metrics* metrics) const;

  // Structure-of-arrays constant storage (one slot per row except deep_,
  // which is compacted and reached through deep_index_).
  std::vector<CommonConstants> common_;
  std::vector<NearSpaceConstants> near_;
  std::vector<std::int32_t> deep_index_;  ///< -1 for near-earth rows
  std::vector<DeepSpaceConstants> deep_;
  std::vector<BatchInitFailure> failures_;
};

}  // namespace cosmicdance::sgp4
