#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cosmicdance::stats {

Ecdf::Ecdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  if (sorted_.empty()) throw ValidationError("ECDF of empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw ValidationError("ECDF quantile outside [0,1]: " + std::to_string(q));
  }
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(rank));
  const auto upper = static_cast<std::size_t>(std::ceil(rank));
  const double weight = rank - static_cast<double>(lower);
  return sorted_[lower] * (1.0 - weight) + sorted_[upper] * weight;
}

std::vector<std::pair<double, double>> Ecdf::points(std::size_t max_points) const {
  std::vector<std::pair<double, double>> pts;
  if (max_points == 0) return pts;
  const std::size_t n = sorted_.size();
  const std::size_t stride = n <= max_points ? 1 : (n + max_points - 1) / max_points;
  pts.reserve(n / stride + 2);
  for (std::size_t i = 0; i < n; i += stride) {
    pts.emplace_back(sorted_[i],
                     static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (pts.back().first != sorted_.back()) {
    pts.emplace_back(sorted_.back(), 1.0);
  } else {
    pts.back().second = 1.0;
  }
  return pts;
}

}  // namespace cosmicdance::stats
