file(REMOVE_RECURSE
  "CMakeFiles/analysis2_test.dir/analysis2_test.cpp.o"
  "CMakeFiles/analysis2_test.dir/analysis2_test.cpp.o.d"
  "analysis2_test"
  "analysis2_test.pdb"
  "analysis2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
