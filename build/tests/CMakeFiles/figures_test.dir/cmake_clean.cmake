file(REMOVE_RECURSE
  "CMakeFiles/figures_test.dir/figures_test.cpp.o"
  "CMakeFiles/figures_test.dir/figures_test.cpp.o.d"
  "figures_test"
  "figures_test.pdb"
  "figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
