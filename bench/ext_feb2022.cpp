// Extension (paper §2/§A.1): the February 2022 Starlink incident — 38 of 49
// newly-launched satellites lost from a ~210 km staging orbit after a
// moderate geomagnetic storm.
#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "io/table.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst = bench::paper_dst();
  auto config = simulation::scenario::feb_2022(&dst);
  auto run = simulation::ConstellationSimulator(config).run();

  int staging_losses = 0;
  for (const auto& failure : run.failures) {
    if (failure.kind == simulation::FailureKind::kStagingReentry) ++staging_losses;
  }

  io::print_heading(std::cout, "February 2022 staging-orbit incident");
  bench::expect("satellites launched", "49", run.launched, 0);
  bench::expect("lost from staging", "38", staging_losses, 0);
  bench::expect("reentered during window", "38", run.reentered, 0);

  // Ground-truth curves: two casualties and two survivors, side by side.
  std::set<int> casualty_ids;
  for (const auto& failure : run.failures) {
    if (failure.kind == simulation::FailureKind::kStagingReentry) {
      casualty_ids.insert(failure.catalog_number);
    }
  }
  std::vector<int> shown;
  for (const auto& [id, truth] : run.truth) {
    if (casualty_ids.count(id) > 0 && shown.size() < 2) shown.push_back(id);
  }
  for (const auto& [id, truth] : run.truth) {
    if (casualty_ids.count(id) == 0 && shown.size() < 4) shown.push_back(id);
  }

  io::print_heading(std::cout,
                    "Altitude truth: two casualties, two survivors");
  std::vector<std::string> header{"date"};
  std::size_t longest = 0;
  for (const int id : shown) {
    // Sequential append: GCC 12's -Wrestrict misfires on "#" + to_string
    // when inlined under -O2 (PR 105651).
    std::string label = "#";
    label += std::to_string(id);
    header.push_back(std::move(label));
    longest = std::max(longest, run.truth.at(id).size());
  }
  io::TablePrinter table(std::move(header));
  const auto* reference = &run.truth.at(shown.front());
  for (const int id : shown) {
    if (run.truth.at(id).size() == longest) reference = &run.truth.at(id);
  }
  for (std::size_t i = 0; i < longest; i += 4) {
    std::vector<std::string> row;
    row.push_back(
        timeutil::from_julian((*reference)[i].jd).to_string().substr(0, 10));
    for (const int id : shown) {
      const auto& truth = run.truth.at(id);
      row.push_back(i < truth.size()
                        ? io::TablePrinter::num(truth[i].altitude_km, 1)
                        : std::string("-"));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  bench::note("expected: satellites hold ~210 km until the 2022-01-29 storm,");
  bench::note("then the losers spiral in within days while survivors raise.");
  return 0;
}
