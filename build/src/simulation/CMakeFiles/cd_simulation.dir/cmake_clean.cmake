file(REMOVE_RECURSE
  "CMakeFiles/cd_simulation.dir/constellation.cpp.o"
  "CMakeFiles/cd_simulation.dir/constellation.cpp.o.d"
  "CMakeFiles/cd_simulation.dir/launch_plan.cpp.o"
  "CMakeFiles/cd_simulation.dir/launch_plan.cpp.o.d"
  "CMakeFiles/cd_simulation.dir/satellite.cpp.o"
  "CMakeFiles/cd_simulation.dir/satellite.cpp.o.d"
  "CMakeFiles/cd_simulation.dir/scenario.cpp.o"
  "CMakeFiles/cd_simulation.dir/scenario.cpp.o.d"
  "CMakeFiles/cd_simulation.dir/tracking.cpp.o"
  "CMakeFiles/cd_simulation.dir/tracking.cpp.o.d"
  "libcd_simulation.a"
  "libcd_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cd_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
