// Binary catalog snapshot cache (the warm-start half of the zero-copy
// ingestion work).
//
// Parsing the text archives dominates pipeline start-up, yet between runs
// the inputs rarely change.  A snapshot serialises the *parsed* artefacts —
// the Dst series, the TLE catalog and the ingestion DataQualityReport — to
// a versioned little-endian binary file keyed by a content hash of the raw
// input bytes.  A warm run whose inputs hash to the same value loads the
// snapshot and skips text parsing entirely; any mismatch (content hash,
// format version, parse policy, truncation, CRC) makes the loader return
// nullopt so the caller silently falls back to the text path and rewrites
// the snapshot.  See DESIGN.md §13 for the format and the reasoning.
//
// Layout: a fixed 40-byte header
//   bytes  0-7   magic "CDSNAPv1"
//   bytes  8-11  format version (u32)
//   byte   12    parse policy (0 strict, 1 tolerant)
//   bytes 13-15  zero padding
//   bytes 16-23  FNV-1a content hash of the raw inputs (u64)
//   bytes 24-31  payload size in bytes (u64)
//   bytes 32-35  CRC32 of the payload (u32)
//   bytes 36-39  zero padding
// followed by the payload.  All integers little-endian; doubles are stored
// as their IEEE-754 bit patterns so reload is bit-exact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "diag/diag.hpp"
#include "spaceweather/dst_index.hpp"
#include "tle/catalog.hpp"

namespace cosmicdance::obs {
class Metrics;
}  // namespace cosmicdance::obs

namespace cosmicdance::io {

/// Everything a warm start needs: the two parsed datasets plus the quality
/// report the text parse would have produced (so cache-hit runs report the
/// same ingestion outcome as cache-miss runs).
struct SnapshotData {
  spaceweather::DstIndex dst;
  tle::TleCatalog catalog;
  diag::DataQualityReport quality;
};

/// Bumped on any change to the payload encoding; a version mismatch is a
/// silent reject-and-reparse, never a migration.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// 64-bit FNV-1a over `bytes`, chainable through `seed` to hash several
/// buffers as one stream.
inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ULL;
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes,
                                  std::uint64_t seed = kFnv1aOffset);

/// CRC32 (IEEE 802.3 polynomial) of `bytes` — the payload integrity check.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// Snapshot file path for an input pair.  The name hashes the *paths* (not
/// the contents), so the same inputs map to a stable file whose stored
/// content hash then decides hit vs reject — editing an input is detected
/// as a stale snapshot at load time, not silently shadowed by a new file.
[[nodiscard]] std::string snapshot_cache_path(const std::string& cache_dir,
                                              const std::string& dst_path,
                                              const std::string& tle_path);

/// Serialise to the on-disk byte layout described above.
[[nodiscard]] std::string encode_snapshot(const SnapshotData& data,
                                          std::uint64_t content_hash,
                                          diag::ParsePolicy policy);

/// Parse snapshot bytes.  Returns nullopt — never throws — when anything
/// disagrees: magic, version, policy, content hash, payload size, CRC, or a
/// payload that decodes inconsistently.
[[nodiscard]] std::optional<SnapshotData> decode_snapshot(
    std::string_view bytes, std::uint64_t expected_content_hash,
    diag::ParsePolicy policy);

/// Load a snapshot file.  A missing/unreadable file is a cache miss
/// (nullopt, no counter); a present-but-invalid file bumps
/// `snapshot.rejected` and also returns nullopt.  A valid load bumps
/// `snapshot.loaded`.  Wall time lands in phase "snapshot.load".
[[nodiscard]] std::optional<SnapshotData> load_snapshot(
    const std::string& path, std::uint64_t content_hash,
    diag::ParsePolicy policy, obs::Metrics* metrics = nullptr);

/// Write a snapshot file (atomically: temp file + rename, creating the
/// cache directory if needed).  Best-effort: returns false and bumps
/// `snapshot.write_failed` on any filesystem error instead of throwing —
/// a read-only cache dir must not break the pipeline.  Success bumps
/// `snapshot.written`; wall time lands in phase "snapshot.save".
bool save_snapshot(const std::string& path, const SnapshotData& data,
                   std::uint64_t content_hash, diag::ParsePolicy policy,
                   obs::Metrics* metrics = nullptr);

}  // namespace cosmicdance::io
