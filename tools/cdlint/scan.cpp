#include "scan.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exec/parallel_for.hpp"
#include "lexer.hpp"

namespace cdlint {
namespace {

namespace fs = std::filesystem;

bool has_lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

/// Directories never scanned: self-test corpora (deliberate violations),
/// build trees, VCS internals.
bool skipped_directory(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == "testdata" || name == ".git" || name.rfind("build", 0) == 0;
}

/// Deterministic worklist: sorted repo-relative paths.
std::vector<std::string> collect_files(const fs::path& root,
                                       const std::vector<std::string>& dirs) {
  std::vector<std::string> files;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    fs::recursive_directory_iterator it(base), end;
    while (it != end) {
      if (it->is_directory() && skipped_directory(it->path())) {
        it.disable_recursion_pending();
      } else if (it->is_regular_file() && has_lintable_extension(it->path())) {
        files.push_back(fs::relative(it->path(), root).generic_string());
      }
      ++it;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

/// Everything one phase-1 worker produces for one file.  The index crosses
/// the worker boundary in serialized form on purpose: the scan is the
/// round-trip test the format gets on every single run.
struct PerFile {
  std::vector<Finding> findings;
  std::string serialized_index;
  std::string error;
};

}  // namespace

ScanResult scan_tree(const ScanOptions& options) {
  ScanResult result;
  const fs::path root(options.root);
  if (!fs::is_directory(root)) {
    result.error = "--root is not a directory: " + options.root;
    return result;
  }
  const std::vector<std::string> files = collect_files(root, options.dirs);
  result.files_scanned = files.size();

  // Phase 1: per-file lexing, per-file rules, index extraction.  Workers
  // write only to their own index's slot; ordered_map returns slots in
  // path order regardless of scheduling.
  const std::vector<PerFile> per_file =
      cosmicdance::exec::ordered_map<PerFile>(
          files.size(), options.threads, [&root, &files](std::size_t i) {
            PerFile out;
            const std::string& rel = files[i];
            std::ifstream in(root / rel, std::ios::binary);
            if (!in) {
              out.error = "cannot read " + rel;
              return out;
            }
            std::ostringstream text;
            text << in.rdbuf();
            const SourceFile source(rel, text.str());

            bool sibling_header = false;
            if (rel.size() > 4 &&
                rel.compare(rel.size() - 4, 4, ".cpp") == 0) {
              const fs::path header = (root / rel).parent_path() /
                                      ((root / rel).stem().string() + ".hpp");
              sibling_header = fs::exists(header);
            }
            out.findings = run_rules(source, sibling_header);
            out.serialized_index = build_index(source).serialize();
            return out;
          });

  // Ordered merge: parse each worker's serialized index in path order.
  for (const PerFile& pf : per_file) {
    if (!pf.error.empty()) {
      result.error = pf.error;
      return result;
    }
    FileIndex index;
    std::string parse_error;
    if (!FileIndex::parse(pf.serialized_index, index, parse_error)) {
      result.error = parse_error;
      return result;
    }
    result.index.merge(std::move(index));
    result.findings.insert(result.findings.end(), pf.findings.begin(),
                           pf.findings.end());
  }

  // Phase 2: cross-file rules over the merged project index.
  std::vector<Finding> cross = run_project_rules(result.index);
  result.findings.insert(result.findings.end(),
                         std::make_move_iterator(cross.begin()),
                         std::make_move_iterator(cross.end()));
  std::sort(result.findings.begin(), result.findings.end());
  return result;
}

}  // namespace cdlint
