// cdlint corpus: allow-directive behaviour.
#include <unordered_map>

int sum_reasoned() {
  std::unordered_map<int, int> table;
  int total = 0;
  // cdlint: allow(unordered-iter) corpus seed: sum is order-independent
  for (const auto& entry : table) {
    total += entry.second;
  }
  return total;
}

int sum_reasonless() {
  std::unordered_map<int, int> table;
  int total = 0;
  // cdlint: allow(unordered-iter)
  for (const auto& entry : table) {
    total += entry.second;
  }
  // cdlint: allow(no-such-rule) the slug above does not exist
  return total;
}
