# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("timeutil")
subdirs("stats")
subdirs("io")
subdirs("orbit")
subdirs("tle")
subdirs("sgp4")
subdirs("spaceweather")
subdirs("atmosphere")
subdirs("simulation")
subdirs("core")
