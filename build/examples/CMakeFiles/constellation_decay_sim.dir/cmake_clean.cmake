file(REMOVE_RECURSE
  "CMakeFiles/constellation_decay_sim.dir/constellation_decay_sim.cpp.o"
  "CMakeFiles/constellation_decay_sim.dir/constellation_decay_sim.cpp.o.d"
  "constellation_decay_sim"
  "constellation_decay_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constellation_decay_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
