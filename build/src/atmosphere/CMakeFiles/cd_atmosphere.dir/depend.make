# Empty dependencies file for cd_atmosphere.
# This may be replaced when dependencies are built.
