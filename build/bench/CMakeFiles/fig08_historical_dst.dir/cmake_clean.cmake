file(REMOVE_RECURSE
  "CMakeFiles/fig08_historical_dst.dir/fig08_historical_dst.cpp.o"
  "CMakeFiles/fig08_historical_dst.dir/fig08_historical_dst.cpp.o.d"
  "fig08_historical_dst"
  "fig08_historical_dst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_historical_dst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
