// Per-storm impact report: for each significant geomagnetic storm in the
// window, the happens-closely-after view of the fleet — how many satellites
// were observable, how many passed the pre-decay filter, and the distribution
// of their post-event altitude excursions and drag changes.
#include <algorithm>
#include <iostream>

#include "core/pipeline.hpp"
#include "io/table.hpp"
#include "simulation/scenario.hpp"
#include "spaceweather/generator.hpp"
#include "stats/descriptive.hpp"

using namespace cosmicdance;

int main() {
  const spaceweather::DstIndex dst =
      spaceweather::DstGenerator(
          spaceweather::DstGenerator::paper_window_2020_2024())
          .generate();
  auto scenario = simulation::scenario::paper_window(&dst, 4, 16.0);
  auto run = simulation::ConstellationSimulator(scenario).run();
  const core::CosmicDance pipeline(dst, std::move(run.catalog));

  // Storms worth reporting: peak at or below the 95th-ptile threshold.
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  auto storms = pipeline.storms();
  storms.erase(std::remove_if(storms.begin(), storms.end(),
                              [&](const auto& s) { return s.peak_dst_nt > p95; }),
               storms.end());

  std::cout << "Storm-by-storm impact report (" << storms.size()
            << " storms with peak <= " << p95 << " nT; "
            << pipeline.tracks().size() << " satellites)\n";

  io::TablePrinter table({"storm onset", "peak nT", "category", "hours", "sats",
                          "median dKm", "p95 dKm", "max dKm", "p95 drag x"});
  for (const auto& storm : storms) {
    const double epoch = timeutil::julian_from_hour_index(storm.peak_hour);
    const std::vector<double> epochs{epoch};
    const auto changes = pipeline.correlator().altitude_change_samples(
        pipeline.tracks(), epochs);
    const auto drags = pipeline.correlator().drag_change_samples(
        pipeline.tracks(), epochs);
    if (changes.empty()) continue;
    const auto s = stats::summarize(changes);
    table.add_row({storm.start_datetime().to_string().substr(0, 10),
                   io::TablePrinter::num(storm.peak_dst_nt, 1),
                   spaceweather::to_string(storm.category),
                   std::to_string(storm.duration_hours()),
                   std::to_string(s.count), io::TablePrinter::num(s.median, 2),
                   io::TablePrinter::num(s.p95, 2),
                   io::TablePrinter::num(s.max, 1),
                   drags.empty()
                       ? "-"
                       : io::TablePrinter::num(stats::percentile(drags, 95.0), 2)});
  }
  table.print(std::cout);

  std::cout << "\nReading guide: dKm is each satellite's largest altitude\n"
               "deviation from its pre-storm altitude within 30 days; 'drag x'\n"
               "is the post/pre ratio of the TLE B* term.  Deeper and longer\n"
               "storms push both tails up (the paper's Figs 5-6).\n";
  return 0;
}
