
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spaceweather/burton.cpp" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/burton.cpp.o" "gcc" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/burton.cpp.o.d"
  "/root/repo/src/spaceweather/dst_index.cpp" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/dst_index.cpp.o" "gcc" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/dst_index.cpp.o.d"
  "/root/repo/src/spaceweather/generator.cpp" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/generator.cpp.o" "gcc" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/generator.cpp.o.d"
  "/root/repo/src/spaceweather/gscale.cpp" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/gscale.cpp.o" "gcc" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/gscale.cpp.o.d"
  "/root/repo/src/spaceweather/historical.cpp" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/historical.cpp.o" "gcc" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/historical.cpp.o.d"
  "/root/repo/src/spaceweather/kp_index.cpp" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/kp_index.cpp.o" "gcc" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/kp_index.cpp.o.d"
  "/root/repo/src/spaceweather/storms.cpp" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/storms.cpp.o" "gcc" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/storms.cpp.o.d"
  "/root/repo/src/spaceweather/wdc.cpp" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/wdc.cpp.o" "gcc" "src/spaceweather/CMakeFiles/cd_spaceweather.dir/wdc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeutil/CMakeFiles/cd_timeutil.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cd_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
