#include "obs/obs.hpp"

#include <cmath>
#include <cstdio>

namespace cosmicdance::obs {
namespace {

/// JSON-safe number: round-trippable for finite values, null otherwise
/// (NaN/Inf are not valid JSON tokens).
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Fixed-precision milliseconds (microsecond resolution) for readability.
std::string json_ms(double ms) {
  if (!std::isfinite(ms)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void append_count_object(std::string& out, const char* key,
                         const std::map<std::string, std::uint64_t>& values) {
  out += "  \"";
  out += key;
  out += "\": {";
  bool first = true;
  for (const auto& [name, value] : values) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += values.empty() ? "}" : "\n  }";
}

}  // namespace

std::string MetricsReport::to_json() const {
  std::string out = "{\n";
  append_count_object(out, "counters", counters);
  out += ",\n";
  append_count_object(out, "scheduling", scheduling);
  out += ",\n  \"gauges\": {";
  bool first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(value);
  }
  out += gauges.empty() ? "}" : "\n  }";
  out += ",\n  \"phases\": {";
  first = true;
  for (const auto& [name, stats] : phases) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) +
           "\": {\"calls\": " + std::to_string(stats.calls) +
           ", \"wall_ms\": " + json_ms(stats.total_ms) + "}";
  }
  out += phases.empty() ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

std::vector<std::vector<std::string>> MetricsReport::metric_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(counters.size() + scheduling.size() + gauges.size() +
               2 * phases.size() + 1);
  rows.push_back({"kind", "name", "value"});
  for (const auto& [name, value] : counters) {
    rows.push_back({"counter", name, std::to_string(value)});
  }
  for (const auto& [name, value] : scheduling) {
    rows.push_back({"scheduling", name, std::to_string(value)});
  }
  for (const auto& [name, value] : gauges) {
    rows.push_back({"gauge", name, json_number(value)});
  }
  for (const auto& [name, stats] : phases) {
    rows.push_back({"phase_calls", name, std::to_string(stats.calls)});
    rows.push_back({"phase_wall_ms", name, json_ms(stats.total_ms)});
  }
  return rows;
}

Metrics::Metrics() : origin_(std::chrono::steady_clock::now()) {}

Counter& Metrics::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Counter& Metrics::sched_counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sched_counters_[name];
}

void Metrics::set_gauge(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

std::uint32_t Metrics::tid_for_current_thread_locked() {
  const auto id = std::this_thread::get_id();
  const auto it = thread_ids_.find(id);
  if (it != thread_ids_.end()) return it->second;
  const auto assigned = static_cast<std::uint32_t>(thread_ids_.size());
  thread_ids_.emplace(id, assigned);
  return assigned;
}

void Metrics::record_phase(const std::string& name,
                           std::chrono::steady_clock::time_point begin,
                           std::chrono::steady_clock::time_point end) {
  using std::chrono::duration;
  using std::chrono::duration_cast;
  using std::chrono::microseconds;
  const std::lock_guard<std::mutex> lock(mutex_);
  PhaseStats& stats = phases_[name];
  ++stats.calls;
  stats.total_ms += duration<double, std::milli>(end - begin).count();
  TraceSpan span;
  span.name = name;
  span.begin_us = static_cast<std::uint64_t>(
      std::max<std::int64_t>(
          0, duration_cast<microseconds>(begin - origin_).count()));
  span.duration_us = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0,
                             duration_cast<microseconds>(end - begin).count()));
  span.tid = tid_for_current_thread_locked();
  spans_.push_back(std::move(span));
}

MetricsReport Metrics::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsReport report;
  for (const auto& [name, counter] : counters_) {
    report.counters[name] = counter.value();
  }
  for (const auto& [name, counter] : sched_counters_) {
    report.scheduling[name] = counter.value();
  }
  report.gauges = gauges_;
  report.phases = phases_;
  return report;
}

std::string Metrics::trace_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out =
      "{\"traceEvents\": [\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"cosmicdance\"}}";
  for (const TraceSpan& span : spans_) {
    out += ",\n  {\"name\": \"" + json_escape(span.name) +
           "\", \"cat\": \"cosmicdance\", \"ph\": \"X\", \"ts\": " +
           std::to_string(span.begin_us) +
           ", \"dur\": " + std::to_string(span.duration_us) +
           ", \"pid\": 1, \"tid\": " + std::to_string(span.tid) + "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace cosmicdance::obs
