#include "spaceweather/dst_index.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace cosmicdance::spaceweather {

DstIndex::DstIndex(timeutil::HourIndex start_hour, std::vector<double> values_nt)
    : start_(start_hour), values_(std::move(values_nt)) {}

DstIndex::DstIndex(const timeutil::DateTime& start, std::vector<double> values_nt)
    : start_(timeutil::hour_index_from_datetime(start)),
      values_(std::move(values_nt)) {}

bool DstIndex::covers(timeutil::HourIndex hour) const noexcept {
  return hour >= start_ && hour < end_hour();
}

double DstIndex::at(timeutil::HourIndex hour) const {
  if (!covers(hour)) {
    throw ValidationError("hour outside Dst series: " + std::to_string(hour));
  }
  return values_[static_cast<std::size_t>(hour - start_)];
}

double DstIndex::at_julian(double jd) const {
  return at(timeutil::hour_index_from_julian(jd));
}

DstIndex DstIndex::slice(timeutil::HourIndex from, timeutil::HourIndex to) const {
  const timeutil::HourIndex lo = std::max(from, start_);
  const timeutil::HourIndex hi = std::min(to, end_hour());
  if (lo >= hi) return DstIndex(lo, {});
  const auto begin = values_.begin() + static_cast<std::ptrdiff_t>(lo - start_);
  const auto end = values_.begin() + static_cast<std::ptrdiff_t>(hi - start_);
  return DstIndex(lo, std::vector<double>(begin, end));
}

timeutil::DateTime DstIndex::start_datetime() const {
  return timeutil::datetime_from_hour_index(start_);
}

double DstIndex::intensity_percentile(double p) const {
  if (empty()) throw ValidationError("intensity percentile of empty Dst series");
  std::vector<double> intensity;
  intensity.reserve(values_.size());
  for (const double v : values_) intensity.push_back(v < 0.0 ? -v : 0.0);
  return stats::percentile(intensity, p);
}

double DstIndex::dst_threshold_at_percentile(double p) const {
  return -intensity_percentile(p);
}

double DstIndex::minimum() const {
  if (empty()) throw ValidationError("minimum of empty Dst series");
  return *std::min_element(values_.begin(), values_.end());
}

}  // namespace cosmicdance::spaceweather
