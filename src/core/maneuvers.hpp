// Manoeuvre detection (paper "Limitations": trajectories also change to
// avoid collisions, a confounder for happens-closely-after analyses).
//
// A manoeuvre shows up in TLE histories as a discrete altitude step between
// consecutive records that is too fast to be drag (which moves metres per
// day at the operational shell): classify such steps and let analyses
// report how many of their candidate events look propulsive rather than
// drag-driven.
#pragma once

#include <span>
#include <vector>

#include "core/track.hpp"

namespace cosmicdance::core {

struct ManeuverDetectorConfig {
  /// Minimum altitude step (km) between consecutive TLEs to call discrete.
  double min_step_km = 0.4;
  /// Steps must exceed this rate (km/day) — drag at the shell is ~100x
  /// slower, so rate separates impulses from decay even across long gaps.
  double min_rate_km_per_day = 1.0;
  /// Consecutive records further apart than this cannot attribute a step.
  double max_gap_days = 3.0;
};

struct ManeuverEvent {
  int catalog_number = 0;
  double jd = 0.0;          ///< epoch of the record after the step
  double delta_km = 0.0;    ///< signed altitude change (+ = boost)
  double rate_km_per_day = 0.0;
};

/// All detected manoeuvres in a track, in time order.
[[nodiscard]] std::vector<ManeuverEvent> detect_maneuvers(
    const SatelliteTrack& track, const ManeuverDetectorConfig& config = {});

/// Pooled over a track set, time-sorted.
[[nodiscard]] std::vector<ManeuverEvent> detect_maneuvers(
    std::span<const SatelliteTrack> tracks,
    const ManeuverDetectorConfig& config = {});

/// Fraction of events within [jd, jd + window_days) of any detected
/// manoeuvre of the same satellite — a contamination estimate for a set of
/// happens-closely-after candidate (satellite, event) pairs.
struct ManeuverContamination {
  std::size_t candidates = 0;
  std::size_t near_maneuver = 0;
  [[nodiscard]] double fraction() const noexcept {
    return candidates == 0
               ? 0.0
               : static_cast<double>(near_maneuver) / static_cast<double>(candidates);
  }
};

[[nodiscard]] ManeuverContamination maneuver_contamination(
    std::span<const SatelliteTrack> tracks, std::span<const double> event_jds,
    double window_days, const ManeuverDetectorConfig& config = {});

}  // namespace cosmicdance::core
