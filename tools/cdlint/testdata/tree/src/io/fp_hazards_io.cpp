// cdlint corpus: seeded violations for rule `fp-accumulation-order` (R13)
// in src/io/ — in scope since the v3 snapshot sections are sized and
// checksummed by parallel workers whose bytes must be bit-identical.
#include <numeric>
#include <vector>

double payload_bytes(const std::vector<double>& section_lengths) {
  return std::reduce(section_lengths.begin(),  // positive: unordered
                     section_lengths.end());
}

double compression_ratio(const std::vector<double>& ratios) {
  float total = 0.0f;  // positive: float accumulator
  for (const double r : ratios) total += static_cast<float>(r);
  return total;
}
