// Microbenchmarks over the measurement pipeline's aggregate operations:
// storm segmentation of a 4-year hourly series, the happens-closely-after
// sample extraction, and catalog text ingestion.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "spaceweather/storms.hpp"

namespace {

using namespace cosmicdance;

const spaceweather::DstIndex& shared_dst() {
  static const spaceweather::DstIndex dst = bench::paper_dst();
  return dst;
}

const core::CosmicDance& shared_pipeline() {
  static const core::CosmicDance pipeline(
      shared_dst(), bench::paper_catalog(shared_dst(), 2, 30.0));
  return pipeline;
}

void BM_DstGeneration(benchmark::State& state) {
  const auto config = spaceweather::DstGenerator::paper_window_2020_2024();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spaceweather::DstGenerator(config).generate());
  }
}
BENCHMARK(BM_DstGeneration);

void BM_StormDetection(benchmark::State& state) {
  const spaceweather::StormDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(shared_dst()));
  }
}
BENCHMARK(BM_StormDetection);

void BM_IntensityPercentile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(shared_dst().intensity_percentile(99.0));
  }
}
BENCHMARK(BM_IntensityPercentile);

void BM_AltitudeChangeSamples(benchmark::State& state) {
  const auto& pipeline = shared_pipeline();
  const double p95 = pipeline.dst_threshold_at_percentile(95.0);
  const auto epochs = pipeline.correlator().storm_event_epochs(p95);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.correlator().altitude_change_samples(
        pipeline.tracks(), epochs));
  }
}
BENCHMARK(BM_AltitudeChangeSamples);

void BM_CatalogIngestText(benchmark::State& state) {
  const std::string text = shared_pipeline().catalog().to_text();
  const auto records = shared_pipeline().catalog().record_count();
  for (auto _ : state) {
    tle::TleCatalog catalog;
    benchmark::DoNotOptimize(catalog.add_from_text(text));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_CatalogIngestText);

void BM_PostEventEnvelope(benchmark::State& state) {
  const auto& pipeline = shared_pipeline();
  const double event_jd =
      timeutil::to_julian(timeutil::make_datetime(2023, 9, 18, 18));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.post_event_envelope(
        event_jd, 30, core::EnvelopeSelection::kAffectedHumped));
  }
}
BENCHMARK(BM_PostEventEnvelope);

}  // namespace
