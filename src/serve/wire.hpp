// Length-prefixed framing for the cosmicdanced wire protocol.
//
// One frame = a 4-byte little-endian u32 payload length followed by that
// many payload bytes (JSON text in both directions).  The prefix makes
// message boundaries explicit over a TCP stream: the reader never guesses
// where a JSON document ends, and a client that writes a frame in arbitrary
// chunks (slow network, deliberate byte-at-a-time tests) is reassembled
// exactly.
//
// Defence: a length prefix above kMaxFrameBytes — whether from a hostile
// client or from pointing a non-protocol peer at the socket — poisons the
// reader permanently (error(), no recovery) so the connection can be closed
// after one clean error response instead of waiting for gigabytes that will
// never arrive.  Garbage *payloads* are not the framer's problem: they frame
// fine and fail JSON parsing one layer up.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cosmicdance::serve {

/// Ceiling on one frame's payload.  Far above any legitimate response
/// (metrics dumps are tens of KB) while keeping a garbage prefix from
/// looking like a pending multi-gigabyte message.
inline constexpr std::uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

/// Bytes of the length prefix.
inline constexpr std::size_t kFramePrefixBytes = 4;

/// Wrap a payload in a frame (prefix + bytes).  Throws ValidationError when
/// the payload exceeds kMaxFrameBytes — responses are builder-controlled, so
/// an oversized one is a programming error, not a peer problem.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame reassembler: feed() bytes as they arrive off the
/// socket, next() yields complete payloads in order.  Once a prefix exceeds
/// kMaxFrameBytes the reader enters a terminal error state: next() returns
/// nullopt and error() stays set (framing is byte-exact, so there is no
/// safe way to resynchronise mid-stream).
class FrameReader {
 public:
  /// Append raw bytes from the stream.  No-op in the error state.
  void feed(std::string_view bytes);

  /// Pop the next complete payload, or nullopt when none is buffered (or
  /// the reader is poisoned).
  [[nodiscard]] std::optional<std::string> next();

  /// Terminal framing failure (oversized length prefix).
  [[nodiscard]] bool error() const noexcept { return error_; }

  /// Bytes buffered but not yet consumed (diagnostics/tests).
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
  bool error_ = false;
};

}  // namespace cosmicdance::serve
