# Empty compiler generated dependencies file for simulation2_test.
# This may be replaced when dependencies are built.
