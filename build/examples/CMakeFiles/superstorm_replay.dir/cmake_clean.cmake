file(REMOVE_RECURSE
  "CMakeFiles/superstorm_replay.dir/superstorm_replay.cpp.o"
  "CMakeFiles/superstorm_replay.dir/superstorm_replay.cpp.o.d"
  "superstorm_replay"
  "superstorm_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superstorm_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
