#include "core/merge.hpp"

#include <algorithm>
#include <array>

#include "stats/descriptive.hpp"
#include "timeutil/hour_axis.hpp"

namespace cosmicdance::core {

std::vector<AlignedSample> align_track(const SatelliteTrack& track,
                                       const spaceweather::DstIndex& dst) {
  std::vector<AlignedSample> aligned;
  aligned.reserve(track.size());
  for (const TrajectorySample& sample : track.samples()) {
    AlignedSample joined;
    joined.sample = sample;
    const timeutil::HourIndex hour =
        timeutil::hour_index_from_julian(sample.epoch_jd);
    if (dst.covers(hour)) {
      joined.dst_available = true;
      joined.dst_nt = dst.at(hour);
      double min_dst = joined.dst_nt;
      for (timeutil::HourIndex back = hour - 24; back < hour; ++back) {
        if (dst.covers(back)) min_dst = std::min(min_dst, dst.at(back));
      }
      joined.min_dst_24h_nt = min_dst;
      joined.category = spaceweather::classify(min_dst);
    }
    aligned.push_back(joined);
  }
  return aligned;
}

std::vector<CategoryDrag> drag_by_category(std::span<const SatelliteTrack> tracks,
                                           const spaceweather::DstIndex& dst) {
  constexpr std::array<spaceweather::StormCategory, 5> kCategories{
      spaceweather::StormCategory::kQuiet, spaceweather::StormCategory::kMinor,
      spaceweather::StormCategory::kModerate,
      spaceweather::StormCategory::kSevere,
      spaceweather::StormCategory::kExtreme};
  std::array<std::vector<double>, 5> bstars;
  for (const SatelliteTrack& track : tracks) {
    for (const AlignedSample& joined : align_track(track, dst)) {
      if (!joined.dst_available) continue;
      bstars[static_cast<std::size_t>(joined.category)].push_back(
          joined.sample.bstar);
    }
  }
  std::vector<CategoryDrag> out;
  for (std::size_t i = 0; i < kCategories.size(); ++i) {
    CategoryDrag row;
    row.category = kCategories[i];
    row.samples = bstars[i].size();
    if (!bstars[i].empty()) row.median_bstar = stats::median(bstars[i]);
    out.push_back(row);
  }
  return out;
}

}  // namespace cosmicdance::core
