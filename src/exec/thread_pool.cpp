#include "exec/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace cosmicdance::exec {

std::size_t resolve_thread_count(int requested) noexcept {
  if (requested > 0) return static_cast<std::size_t>(requested);
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::max(1u, hardware);
}

ThreadPool::ThreadPool(std::size_t thread_count) {
  const std::size_t count = std::max<std::size_t>(1, thread_count);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error("submit() on a shutting-down ThreadPool");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(resolve_thread_count(0));
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cosmicdance::exec
