#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "spaceweather/burton.hpp"
#include "spaceweather/dst_index.hpp"
#include "spaceweather/generator.hpp"
#include "spaceweather/gscale.hpp"
#include "spaceweather/historical.hpp"
#include "spaceweather/storms.hpp"
#include "spaceweather/wdc.hpp"
#include "stats/descriptive.hpp"
#include "timeutil/datetime.hpp"

namespace cosmicdance::spaceweather {
namespace {

using timeutil::make_datetime;

TEST(DstIndexTest, BasicAccessors) {
  const DstIndex dst(make_datetime(2023, 1, 1), {-10.0, -20.0, -30.0});
  EXPECT_EQ(dst.size(), 3u);
  const timeutil::HourIndex start = dst.start_hour();
  EXPECT_TRUE(dst.covers(start));
  EXPECT_TRUE(dst.covers(start + 2));
  EXPECT_FALSE(dst.covers(start + 3));
  EXPECT_FALSE(dst.covers(start - 1));
  EXPECT_DOUBLE_EQ(dst.at(start + 1), -20.0);
  EXPECT_THROW(static_cast<void>(dst.at(start + 3)), ValidationError);
  EXPECT_DOUBLE_EQ(dst.minimum(), -30.0);
}

TEST(DstIndexTest, AtJulianHitsContainingHour) {
  const DstIndex dst(make_datetime(2023, 1, 1), {-10.0, -20.0});
  const double jd = timeutil::to_julian(make_datetime(2023, 1, 1, 1, 59, 59.0));
  EXPECT_DOUBLE_EQ(dst.at_julian(jd), -20.0);
}

TEST(DstIndexTest, SliceClamps) {
  const DstIndex dst(make_datetime(2023, 1, 1), {-1.0, -2.0, -3.0, -4.0});
  const auto start = dst.start_hour();
  const DstIndex mid = dst.slice(start + 1, start + 3);
  EXPECT_EQ(mid.size(), 2u);
  EXPECT_DOUBLE_EQ(mid.at(start + 1), -2.0);
  const DstIndex all = dst.slice(start - 100, start + 100);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_TRUE(dst.slice(start + 10, start + 20).empty());
}

TEST(DstIndexTest, IntensityPercentiles) {
  // 100 hours: 99 quiet at -10, one deep at -300.
  std::vector<double> values(100, -10.0);
  values[50] = -300.0;
  const DstIndex dst(make_datetime(2023, 1, 1), std::move(values));
  EXPECT_NEAR(dst.intensity_percentile(50), 10.0, 1e-9);
  EXPECT_GT(dst.intensity_percentile(99.9), 100.0);
  EXPECT_DOUBLE_EQ(dst.dst_threshold_at_percentile(50), -10.0);
}

TEST(DstIndexTest, PositiveDstCountsAsZeroIntensity) {
  const DstIndex dst(make_datetime(2023, 1, 1), {5.0, 10.0, -20.0, -20.0});
  EXPECT_DOUBLE_EQ(dst.intensity_percentile(0), 0.0);
}

TEST(GScaleTest, BandBoundaries) {
  EXPECT_EQ(classify(0.0), StormCategory::kQuiet);
  EXPECT_EQ(classify(-49.9), StormCategory::kQuiet);
  EXPECT_EQ(classify(-50.0), StormCategory::kMinor);
  EXPECT_EQ(classify(-100.0), StormCategory::kModerate);
  EXPECT_EQ(classify(-199.9), StormCategory::kModerate);
  EXPECT_EQ(classify(-200.0), StormCategory::kSevere);
  EXPECT_EQ(classify(-213.0), StormCategory::kSevere);  // the Apr-2023 event
  EXPECT_EQ(classify(-350.0), StormCategory::kExtreme);
  EXPECT_EQ(classify(-412.0), StormCategory::kExtreme);  // May-2024
}

TEST(GScaleTest, NamesAndThresholds) {
  EXPECT_EQ(to_string(StormCategory::kMinor), "minor");
  EXPECT_EQ(to_string(StormCategory::kExtreme), "extreme");
  EXPECT_DOUBLE_EQ(threshold(StormCategory::kMinor), -50.0);
  EXPECT_DOUBLE_EQ(threshold(StormCategory::kSevere), -200.0);
  EXPECT_THROW(static_cast<void>(threshold(StormCategory::kQuiet)), ValidationError);
}

DstIndex series_with(std::vector<double> values) {
  return DstIndex(make_datetime(2023, 6, 1), std::move(values));
}

TEST(StormDetectorTest, SegmentsContiguousRuns) {
  const DstIndex dst = series_with(
      {-10, -20, -60, -80, -55, -10, -10, -120, -90, -40, -10});
  const StormDetector detector;
  const auto events = detector.detect(dst);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].duration_hours(), 3);
  EXPECT_DOUBLE_EQ(events[0].peak_dst_nt, -80.0);
  EXPECT_EQ(events[0].category, StormCategory::kMinor);
  EXPECT_EQ(events[1].duration_hours(), 2);
  EXPECT_EQ(events[1].category, StormCategory::kModerate);
}

TEST(StormDetectorTest, PeakHourIsMostNegative) {
  const DstIndex dst = series_with({-60, -70, -90, -65, -10});
  const auto events = StormDetector().detect(dst);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].peak_hour, dst.start_hour() + 2);
  EXPECT_EQ(events[0].start_datetime().hour, 0);
}

TEST(StormDetectorTest, MergeGapJoinsRuns) {
  const DstIndex dst = series_with({-60, -40, -60, -10, -10});
  StormDetectorConfig config;
  config.merge_gap_hours = 1;
  const auto merged = StormDetector(config).detect(dst);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].duration_hours(), 3);  // spans the one-hour gap
  const auto unmerged = StormDetector().detect(dst);
  EXPECT_EQ(unmerged.size(), 2u);
}

TEST(StormDetectorTest, MinDurationFilter) {
  const DstIndex dst = series_with({-60, -10, -60, -60, -10});
  StormDetectorConfig config;
  config.min_duration_hours = 2;
  const auto events = StormDetector(config).detect(dst);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].duration_hours(), 2);
}

TEST(StormDetectorTest, StormAtSeriesEdges) {
  const DstIndex dst = series_with({-70, -60, -10, -60, -70});
  const auto events = StormDetector().detect(dst);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start_hour, dst.start_hour());
  EXPECT_EQ(events[1].end_hour, dst.end_hour());
}

TEST(StormDetectorTest, CategoryHours) {
  const DstIndex dst = series_with({-10, -60, -110, -210, -360, -55});
  const auto hours = StormDetector::category_hours(dst);
  EXPECT_EQ(hours.at(StormCategory::kMinor), 2);
  EXPECT_EQ(hours.at(StormCategory::kModerate), 1);
  EXPECT_EQ(hours.at(StormCategory::kSevere), 1);
  EXPECT_EQ(hours.at(StormCategory::kExtreme), 1);
}

TEST(StormDetectorTest, DurationsUseCategoryThreshold) {
  // One moderate storm: 6 hours below -50 but only 2 below -100.
  const DstIndex dst = series_with({-60, -80, -120, -130, -70, -55, -10});
  const StormDetector detector;
  const auto moderate =
      detector.durations_for_category(dst, StormCategory::kModerate);
  ASSERT_EQ(moderate.size(), 1u);
  EXPECT_DOUBLE_EQ(moderate[0], 2.0);
  // No event *peaks* in minor (the peak is -130), so minor has none.
  EXPECT_TRUE(detector.durations_for_category(dst, StormCategory::kMinor).empty());
}

TEST(BurtonTest, RecoveryIsExponential) {
  // No injection: initial state decays by e^(-1/tau) per hour.
  std::vector<double> q(10, 0.0);
  const auto out = integrate_burton(q, 10.0, -100.0);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_NEAR(out[0], -100.0 * std::exp(-0.1), 1e-9);
  EXPECT_NEAR(out[9], -100.0 * std::exp(-1.0), 1e-9);
}

TEST(BurtonTest, InjectionProfileHitsPeak) {
  const double peak = -250.0;
  const auto profile = storm_injection_profile(peak, 5.0, 12.0, 40);
  const auto response = integrate_burton(profile, 12.0);
  // The response reaches the requested peak at the end of the main phase.
  double minimum = 0.0;
  for (const double v : response) minimum = std::min(minimum, v);
  EXPECT_NEAR(minimum, peak, 1.0);
}

TEST(BurtonTest, Validation) {
  std::vector<double> q(5, 0.0);
  EXPECT_THROW(integrate_burton(q, 0.0), ValidationError);
  EXPECT_THROW(storm_injection_profile(100.0, 5.0, 10.0, 20), ValidationError);
  EXPECT_THROW(storm_injection_profile(-100.0, 0.5, 10.0, 20), ValidationError);
}

TEST(GeneratorTest, DeterministicForSeed) {
  DstGeneratorConfig config;
  config.hours = 24 * 30;
  const DstIndex a = DstGenerator(config).generate();
  const DstIndex b = DstGenerator(config).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.values()[i], b.values()[i]);
  }
}

TEST(GeneratorTest, QuietOnlyStatistics) {
  DstGeneratorConfig config;
  config.hours = 24 * 365;
  config.include_random_storms = false;
  const DstIndex dst = DstGenerator(config).generate();
  std::vector<double> v(dst.values().begin(), dst.values().end());
  EXPECT_NEAR(stats::mean(v), config.quiet_mean_nt, 1.5);
  EXPECT_NEAR(stats::stddev(v), config.quiet_sigma_nt, 1.5);
  EXPECT_GT(dst.minimum(), -60.0);  // no storms injected
}

TEST(GeneratorTest, ScriptedStormAppearsOnSchedule) {
  DstGeneratorConfig config;
  config.start = make_datetime(2023, 1, 1);
  config.hours = 24 * 60;
  config.include_random_storms = false;
  config.scripted_storms.push_back(
      {make_datetime(2023, 1, 20, 6), -180.0, 4.0, 1.0, 10.0});
  const DstIndex dst = DstGenerator(config).generate();
  EXPECT_NEAR(dst.minimum(), -180.0, 12.0);
  // The minimum falls within a day of the scripted onset.
  const auto onset = timeutil::hour_index_from_datetime(make_datetime(2023, 1, 20));
  double around_peak = 0.0;
  for (timeutil::HourIndex h = onset; h < onset + 48; ++h) {
    around_peak = std::min(around_peak, dst.at(h));
  }
  EXPECT_NEAR(around_peak, dst.minimum(), 1e-9);
}

TEST(GeneratorTest, RejectsBadConfig) {
  DstGeneratorConfig config;
  config.hours = 0;
  EXPECT_THROW(DstGenerator{config}, ValidationError);
  config.hours = 10;
  config.quiet_ar1 = 1.0;
  EXPECT_THROW(DstGenerator{config}, ValidationError);
  config.quiet_ar1 = 0.9;
  config.scripted_storms.push_back({make_datetime(2020, 1, 2), +10.0, 4, 0, 10});
  EXPECT_THROW(DstGenerator(config).generate(), ValidationError);
}

// ---- the paper-window calibration (§4 headline numbers) -------------------

class PaperWindow : public ::testing::Test {
 protected:
  static const DstIndex& dst() {
    static const DstIndex series =
        DstGenerator(DstGenerator::paper_window_2020_2024()).generate();
    return series;
  }
};

TEST_F(PaperWindow, CoversJan2020ToMay2024) {
  EXPECT_EQ(dst().start_datetime().year, 2020);
  const auto end = timeutil::datetime_from_hour_index(dst().end_hour());
  EXPECT_EQ(end.year, 2024);
  EXPECT_EQ(end.month, 5);
}

TEST_F(PaperWindow, NinetyNinthPercentileNearMinus63) {
  // Paper: 99th-ptile intensity = -63 nT.
  EXPECT_NEAR(dst().dst_threshold_at_percentile(99.0), -63.0, 8.0);
}

TEST_F(PaperWindow, NinetyFifthPercentileBelowMinorThreshold) {
  // Paper: the 95th-ptile intensity is weaker than a minor storm.
  EXPECT_GT(dst().dst_threshold_at_percentile(95.0), kMinorThresholdNt);
}

TEST_F(PaperWindow, CategoryHoursMatchHeadline) {
  const auto hours = StormDetector::category_hours(dst());
  // Paper: 720 mild, 74 moderate, 3 severe hours.
  EXPECT_NEAR(static_cast<double>(hours.at(StormCategory::kMinor)), 720.0, 220.0);
  EXPECT_NEAR(static_cast<double>(hours.at(StormCategory::kModerate)), 74.0, 40.0);
  EXPECT_EQ(hours.at(StormCategory::kSevere), 3);
  EXPECT_EQ(hours.count(StormCategory::kExtreme), 0u);
}

TEST_F(PaperWindow, SevereStormIsAprilTwentyThree) {
  const auto severe = StormDetector().durations_for_category(
      dst(), StormCategory::kSevere);
  ASSERT_EQ(severe.size(), 1u);
  EXPECT_DOUBLE_EQ(severe[0], 3.0);  // "lasted for 3 contiguous hours"
  EXPECT_NEAR(dst().minimum(), -213.0, 10.0);
}

TEST_F(PaperWindow, DurationShapes) {
  const StormDetector detector;
  const auto minor = detector.durations_for_category(dst(), StormCategory::kMinor);
  ASSERT_GT(minor.size(), 20u);
  // Paper: mild median ~3 h, max ~29 h.
  EXPECT_NEAR(stats::median(minor), 3.0, 2.0);
  EXPECT_GT(stats::max(minor), 15.0);
  const auto moderate =
      detector.durations_for_category(dst(), StormCategory::kModerate);
  ASSERT_GT(moderate.size(), 5u);
  EXPECT_NEAR(stats::median(moderate), 3.0, 2.5);
}

TEST(SuperstormTest, May2024Shape) {
  const DstIndex dst =
      DstGenerator(DstGenerator::with_may_2024_superstorm()).generate();
  // Paper: peak ~ -412 nT, below -200 nT for ~23 hours.
  EXPECT_NEAR(dst.minimum(), -412.0, 25.0);
  long below200 = 0;
  for (const double v : dst.values()) {
    if (v <= -200.0) ++below200;
  }
  EXPECT_NEAR(static_cast<double>(below200), 23.0, 7.0);
  // The peak lands on May 10/11.
  const auto may10 = timeutil::hour_index_from_datetime(make_datetime(2024, 5, 10));
  const DstIndex may = dst.slice(may10, may10 + 48);
  EXPECT_NEAR(may.minimum(), dst.minimum(), 1e-9);
}

TEST(HistoricalTest, TableContents) {
  const auto& storms = historical_storms();
  ASSERT_GE(storms.size(), 10u);
  EXPECT_EQ(storms.front().name, "Carrington Event");
  EXPECT_DOUBLE_EQ(storms.front().peak_dst_nt, -1800.0);
  EXPECT_FALSE(storms.front().instrumental);
  // Chronological order.
  for (std::size_t i = 1; i < storms.size(); ++i) {
    EXPECT_LT(timeutil::to_julian(storms[i - 1].date),
              timeutil::to_julian(storms[i].date));
  }
}

TEST(HistoricalTest, Fig8StormsAreInstrumental) {
  const auto fig8 = fig8_storms();
  EXPECT_EQ(fig8.size(), 8u);
  for (const auto& storm : fig8) {
    EXPECT_TRUE(storm.instrumental);
    EXPECT_LT(storm.peak_dst_nt, -250.0);
  }
}

TEST(HistoricalTest, FiftyYearSeriesContainsNamedPeaks) {
  const DstIndex dst =
      DstGenerator(DstGenerator::historical_50_years()).generate();
  // The deepest value is the 1989 Quebec storm.
  EXPECT_NEAR(dst.minimum(), -589.0, 30.0);
  // Each Fig 8 storm shows up within 2 days of its date.
  for (const auto& storm : fig8_storms()) {
    const auto hour = timeutil::hour_index_from_datetime(storm.date);
    const DstIndex around = dst.slice(hour - 24, hour + 72);
    EXPECT_LT(around.minimum(), storm.peak_dst_nt + 60.0) << storm.name;
  }
}

TEST(WdcTest, RoundTripExactToRounding) {
  DstGeneratorConfig config;
  config.hours = 24 * 10;
  config.start = make_datetime(2023, 2, 27);  // spans a month boundary
  const DstIndex original = DstGenerator(config).generate();
  const DstIndex parsed = from_wdc(to_wdc(original));
  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed.start_hour(), original.start_hour());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(parsed.values()[i], original.values()[i], 0.51);  // integer nT
  }
}

TEST(WdcTest, PartialDayPaddedWithMissing) {
  // Series starting at 05:00: the leading 5 hours are missing markers and
  // must be trimmed on parse.
  const DstIndex dst(make_datetime(2023, 1, 1, 5), std::vector<double>(30, -25.0));
  const DstIndex parsed = from_wdc(to_wdc(dst));
  EXPECT_EQ(parsed.start_hour(), dst.start_hour());
  EXPECT_EQ(parsed.size(), dst.size());
}

TEST(WdcTest, RecordLayout) {
  const DstIndex dst(make_datetime(2024, 5, 10), std::vector<double>(24, -100.0));
  const std::string text = to_wdc(dst);
  ASSERT_GE(text.size(), 120u);
  EXPECT_EQ(text.substr(0, 3), "DST");
  EXPECT_EQ(text.substr(3, 2), "24");  // year
  EXPECT_EQ(text.substr(5, 2), "05");  // month
  EXPECT_EQ(text[7], '*');
  EXPECT_EQ(text.substr(8, 2), "10");  // day
  const std::size_t newline = text.find('\n');
  EXPECT_EQ(newline, 120u);
}

TEST(WdcTest, ParseErrors) {
  EXPECT_THROW(from_wdc("XXX2405*10RRX 200000"), ParseError);
  EXPECT_THROW(from_wdc("DST2405*10RR"), ParseError);
  EXPECT_TRUE(from_wdc("").empty());
}

TEST(WdcTest, EmptySeries) { EXPECT_TRUE(to_wdc(DstIndex{}).empty()); }

}  // namespace
}  // namespace cosmicdance::spaceweather
