// cdlint corpus: seeded violations for rule `nondeterminism` (R1).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>

int jitter() {
  int x = rand();
  std::random_device entropy;
  x += static_cast<int>(entropy());
  const auto now = std::chrono::system_clock::now();
  (void)now;
  long stamp = time(nullptr);
  return x + static_cast<int>(stamp);
}

struct Item {};
std::map<Item*, int> ranking;
