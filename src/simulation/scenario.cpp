#include "simulation/scenario.hpp"

#include "simulation/launch_plan.hpp"

namespace cosmicdance::simulation::scenario {

ConstellationConfig paper_window(const spaceweather::DstIndex* dst,
                                 int satellites_per_batch, double cadence_days,
                                 std::uint64_t seed) {
  ConstellationConfig config;
  config.seed = seed;
  config.dst = dst;
  config.start = timeutil::make_datetime(2019, 11, 11);
  config.end = timeutil::make_datetime(2024, 5, 7);
  config.launches = starlink_like_plan(config.start,
                                       timeutil::make_datetime(2024, 4, 1),
                                       cadence_days, satellites_per_batch);
  return config;
}

ConstellationConfig launch_l1(const spaceweather::DstIndex* dst,
                              std::uint64_t seed) {
  ConstellationConfig config;
  config.seed = seed;
  config.dst = dst;
  config.start = timeutil::make_datetime(2019, 11, 11);
  config.end = timeutil::make_datetime(2020, 12, 31);
  config.record_truth = true;

  LaunchBatch l1;
  l1.time = config.start;
  l1.count = 43;  // the 43 satellites Fig 9 follows
  l1.raan_deg = 150.0;
  l1.staging_days = 75.0;  // L1 dwelled at ~350 km into early 2020
  l1.satellite.staging_altitude_km = 360.0;
  l1.satellite.target_altitude_km = 550.0;
  l1.satellite.inclination_deg = 53.0;
  config.launches.push_back(l1);
  config.first_catalog_number = 44713;  // real L1 range
  return config;
}

ConstellationConfig may_2024(const spaceweather::DstIndex* dst, int fleet_size,
                             std::uint64_t seed) {
  ConstellationConfig config;
  config.seed = seed;
  config.dst = dst;
  config.start = timeutil::make_datetime(2024, 4, 20);
  config.end = timeutil::make_datetime(2024, 6, 1);
  config.failures.proactive_response = true;  // Starlink's stated posture

  // Pre-seeded operational fleet split across planes/shells like the
  // deployed Gen1 system (540/550/560 km + 5 km inter-shell spacing note).
  const int shells = 3;
  const double shell_altitudes[shells] = {540.0, 550.0, 560.0};
  for (int s = 0; s < shells; ++s) {
    LaunchBatch batch;
    batch.time = config.start;
    batch.count = fleet_size / shells;
    batch.prelaunched = true;
    batch.raan_deg = 120.0 * s;
    batch.satellite.target_altitude_km = shell_altitudes[s];
    config.launches.push_back(batch);
  }
  return config;
}

ConstellationConfig figure3(const spaceweather::DstIndex* dst, std::uint64_t seed) {
  ConstellationConfig config;
  config.seed = seed;
  config.dst = dst;
  config.start = timeutil::make_datetime(2023, 1, 1);
  config.end = timeutil::make_datetime(2024, 5, 7);
  config.record_truth = true;
  // The cherry-picked satellites fail deterministically; keep the random
  // model out of the way.
  config.failures.enabled = false;

  auto pinned = [&](int catalog) {
    LaunchBatch batch;
    batch.time = config.start;
    batch.count = 1;
    batch.prelaunched = true;
    batch.first_catalog_number = catalog;
    batch.raan_deg = 40.0 * (catalog % 9);
    // The paper's storylines show fast decays (~150 km over a few weeks for
    // #44943); these early-build satellites fall with a hot drag profile.
    batch.satellite.ballistic_uncontrolled = 1.2;
    return batch;
  };
  config.launches.push_back(pinned(44943));
  config.launches.push_back(pinned(45400));
  config.launches.push_back(pinned(45766));

  // #45766: drag spike and permanent decay right after the 2023-03-24 storm.
  config.forced_failures.push_back(
      {45766, timeutil::make_datetime(2023, 3, 24, 12),
       FailureKind::kPermanentDecay, 0.0});
  // #45400: decay onset after the same storm (paper: drag change modest).
  config.forced_failures.push_back(
      {45400, timeutil::make_datetime(2023, 3, 25, 0),
       FailureKind::kPermanentDecay, 0.0});
  // #44943: sharp decay (~150 km over weeks) after the 2024-03-03 storm.
  config.forced_failures.push_back(
      {44943, timeutil::make_datetime(2024, 3, 3, 18),
       FailureKind::kPermanentDecay, 0.0});
  return config;
}

ConstellationConfig feb_2022(const spaceweather::DstIndex* dst,
                             std::uint64_t seed) {
  ConstellationConfig config;
  config.seed = seed;
  config.dst = dst;
  config.start = timeutil::make_datetime(2022, 1, 15);
  config.end = timeutil::make_datetime(2022, 4, 1);
  config.record_truth = true;

  LaunchBatch batch;
  batch.time = timeutil::make_datetime(2022, 1, 28);
  batch.count = 49;
  batch.raan_deg = 210.0;
  batch.staging_days = 30.0;
  batch.satellite.staging_altitude_km = 210.0;  // the fatally low deployment
  config.launches.push_back(batch);
  config.first_catalog_number = 51439;  // the real group's range

  // At 210 km the storm-expanded thermosphere overwhelms the Hall thrusters
  // quickly; the staging-loss model is correspondingly hot here.
  config.failures.staging_loss_onset_nt = 55.0;
  config.failures.staging_loss_scale = 0.5;
  return config;
}

}  // namespace cosmicdance::simulation::scenario
