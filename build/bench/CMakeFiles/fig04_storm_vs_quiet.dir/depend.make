# Empty dependencies file for fig04_storm_vs_quiet.
# This may be replaced when dependencies are built.
