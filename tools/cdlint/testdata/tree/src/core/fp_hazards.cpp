// cdlint corpus: seeded violations for rule `fp-accumulation-order` (R13).
#include <numeric>
#include <vector>

#pragma GCC optimize("fast-math")  // positive: re-associates accumulation

double mean(const std::vector<double>& values) {
  return std::reduce(values.begin(), values.end()) /  // positive: unordered
         static_cast<double>(values.size());
}

double sum_fixed(const std::vector<double>& values) {
  double total = 0.0;  // negative: double accumulator, fixed-order loop
  for (const double v : values) total += v;
  return total;
}

double lossy_sum(const std::vector<double>& values) {
  float total = 0.0f;  // positive: float accumulator
  for (const double v : values) total += static_cast<float>(v);
  return total;
}

double allowed_sum(const std::vector<double>& values) {
  // cdlint: allow(fp-accumulation-order) corpus seed: display-only rounding, not a measurement path
  float approx = 0.0f;
  for (const double v : values) approx += static_cast<float>(v);
  return approx;
}
