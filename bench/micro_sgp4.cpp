// Microbenchmarks: SGP4 initialisation/propagation and TLE parse/format —
// the per-record costs that dominate ingesting a multi-million-record
// archive — plus the fleet-scale batch engine (DESIGN.md §16).
//
// Supplies its own main(): after the google-benchmark suite runs, an
// instrumented telemetry pass sweeps a synthetic mixed fleet (LEO +
// synchronous + Molniya rows, so both resonance branches are exercised)
// across a 60-day epoch grid with sgp4::BatchPropagator and writes a
// machine-readable record.  tier-1 pass 4 gates on it: a positions/s
// floor, zero non-kOk statuses, and a bit-identical threads=1 vs
// threads=N grid (the determinism contract, enforced end to end):
//
//   ./micro_sgp4 [--benchmark_filter=RE] [--bench-out F] [--threads N]
//
// Default output: BENCH_sgp4.json in the working directory.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sgp4/batch.hpp"
#include "sgp4/sgp4.hpp"
#include "timeutil/datetime.hpp"
#include "tle/tle.hpp"

namespace {

using namespace cosmicdance;

tle::Tle starlink_tle() {
  tle::Tle t;
  t.catalog_number = 45000;
  t.international_designator = "20001A";
  t.epoch_jd = timeutil::to_julian(timeutil::make_datetime(2023, 1, 1, 12));
  t.inclination_deg = 53.05;
  t.raan_deg = 100.0;
  t.eccentricity = 1.0e-4;
  t.arg_perigee_deg = 90.0;
  t.mean_anomaly_deg = 270.0;
  t.mean_motion_revday = 15.06;
  t.bstar = 2.0e-4;
  return t;
}

tle::Tle geo_tle() {
  tle::Tle t = starlink_tle();
  t.mean_motion_revday = 1.00273896;
  t.inclination_deg = 0.5;
  t.eccentricity = 3.0e-4;
  t.bstar = 0.0;
  return t;
}

tle::Tle molniya_tle() {
  tle::Tle t = starlink_tle();
  t.mean_motion_revday = 2.00570000;
  t.inclination_deg = 63.4;
  t.eccentricity = 0.72;
  t.arg_perigee_deg = 270.0;
  t.bstar = 0.0;
  return t;
}

/// A synthetic mixed fleet: mostly LEO shells with a deep-space tail
/// covering both resonance branches.  Deterministic (index-derived
/// elements, no RNG) so every run and both thread counts see one dataset.
std::vector<tle::Tle> bench_fleet(std::size_t rows) {
  std::vector<tle::Tle> fleet;
  fleet.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    tle::Tle t;
    const int kind = static_cast<int>(i % 10);
    if (kind == 8) {
      t = geo_tle();
    } else if (kind == 9) {
      t = molniya_tle();
    } else {
      t = starlink_tle();
      t.inclination_deg = 43.0 + 7.0 * static_cast<double>(i % 8);
      t.mean_motion_revday = 14.4 + 0.02 * static_cast<double>(i % 64);
      t.eccentricity = 1.0e-4 + 2.0e-4 * static_cast<double>(i % 5);
      t.bstar = 1.0e-5 + 1.0e-5 * static_cast<double>(i % 9);
    }
    t.catalog_number = static_cast<int>(50000 + i);
    t.raan_deg = 0.36 * static_cast<double>(i % 1000);
    t.mean_anomaly_deg = 0.72 * static_cast<double>(i % 500);
    fleet.push_back(t);
  }
  return fleet;
}

/// The telemetry grid: 60 days at 6-hour cadence, in minutes since epoch.
std::vector<double> bench_grid() {
  std::vector<double> tsince;
  tsince.reserve(241);
  for (int i = 0; i <= 240; ++i) tsince.push_back(360.0 * i);
  return tsince;
}

void BM_Sgp4Init(benchmark::State& state) {
  const tle::Tle t = starlink_tle();
  for (auto _ : state) {
    sgp4::Sgp4Propagator propagator(t);
    benchmark::DoNotOptimize(propagator.recovered_altitude_km());
  }
}
BENCHMARK(BM_Sgp4Init);

void BM_Sgp4PropagateNearEarth(benchmark::State& state) {
  const sgp4::Sgp4Propagator propagator(starlink_tle());
  double tsince = 0.0;
  orbit::StateVector out;
  for (auto _ : state) {
    tsince += 1.0;
    benchmark::DoNotOptimize(propagator.try_propagate_minutes(tsince, out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Sgp4PropagateNearEarth);

void BM_Sgp4PropagateDeepSpace(benchmark::State& state) {
  const sgp4::Sgp4Propagator propagator(geo_tle());
  double tsince = 0.0;
  orbit::StateVector out;
  for (auto _ : state) {
    tsince += 1.0;
    benchmark::DoNotOptimize(propagator.try_propagate_minutes(tsince, out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Sgp4PropagateDeepSpace);

/// The batch engine over a small fleet × grid — items processed counts
/// positions, so the report's items/s is directly positions/s.
void BM_BatchPropagate(benchmark::State& state) {
  const sgp4::BatchPropagator batch =
      sgp4::BatchPropagator::from_tles(bench_fleet(64));
  const std::vector<double> grid = bench_grid();
  for (auto _ : state) {
    const sgp4::BatchResult result = batch.propagate_minutes(grid, 1);
    benchmark::DoNotOptimize(result.states.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(64 * grid.size()));
}
BENCHMARK(BM_BatchPropagate);

void BM_TleFormat(benchmark::State& state) {
  const tle::Tle t = starlink_tle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tle::format_tle(t));
  }
}
BENCHMARK(BM_TleFormat);

void BM_TleParse(benchmark::State& state) {
  const tle::TleLines lines = tle::format_tle(starlink_tle());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tle::parse_tle(lines.line1, lines.line2));
  }
}
BENCHMARK(BM_TleParse);

/// The telemetry pass tier-1 gates on: propagate the full synthetic fleet
/// across the grid at the requested thread count, then once more serially,
/// and record positions/s plus the two correctness keys (status_errors
/// must be 0, threads_identical must be 1).
void run_telemetry_pass(const std::string& out_path, int threads) {
  obs::Metrics metrics;
  const std::vector<tle::Tle> fleet = bench_fleet(600);
  const sgp4::BatchPropagator batch = sgp4::BatchPropagator::from_tles(fleet);
  const std::vector<double> grid = bench_grid();

  const sgp4::BatchResult parallel =
      batch.propagate_minutes(grid, threads, &metrics);
  const sgp4::BatchResult serial = batch.propagate_minutes(grid, 1);

  bool identical = parallel.statuses == serial.statuses &&
                   parallel.states.size() == serial.states.size();
  for (std::size_t i = 0; identical && i < parallel.states.size(); ++i) {
    identical = parallel.states[i].position_km == serial.states[i].position_km &&
                parallel.states[i].velocity_kms == serial.states[i].velocity_kms;
  }

  const obs::MetricsReport report = metrics.snapshot();
  const auto it = report.phases.find("sgp4.batch_propagate");
  const double batch_ms = it != report.phases.end() ? it->second.total_ms : 0.0;

  std::map<std::string, double> throughput;
  throughput["rows"] = static_cast<double>(batch.rows());
  throughput["deep_space_rows"] = static_cast<double>(batch.deep_space_rows());
  throughput["epochs"] = static_cast<double>(grid.size());
  throughput["positions"] = static_cast<double>(parallel.states.size());
  if (batch_ms > 0.0) {
    throughput["positions_per_s"] =
        static_cast<double>(parallel.states.size()) / (batch_ms / 1000.0);
  }
  throughput["status_errors"] =
      static_cast<double>(parallel.error_count() + batch.init_failures().size());
  throughput["threads_identical"] = identical ? 1.0 : 0.0;

  bench::write_bench_record(out_path, "micro_sgp4", threads,
                            "bench_fleet(rows=600) x 60d/6h grid", throughput,
                            metrics);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const io::ArgParser args(argc, argv);
  run_telemetry_pass(args.option_or("bench-out", "BENCH_sgp4.json"),
                     static_cast<int>(args.nonnegative_integer_or("threads", 0)));
  return 0;
}
