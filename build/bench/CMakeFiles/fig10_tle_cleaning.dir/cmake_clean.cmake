file(REMOVE_RECURSE
  "CMakeFiles/fig10_tle_cleaning.dir/fig10_tle_cleaning.cpp.o"
  "CMakeFiles/fig10_tle_cleaning.dir/fig10_tle_cleaning.cpp.o.d"
  "fig10_tle_cleaning"
  "fig10_tle_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tle_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
